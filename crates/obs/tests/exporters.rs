//! Exporter validity tests.
//!
//! The Chrome trace exporter's output must parse as JSON and contain
//! balanced, properly nested `"B"`/`"E"` events per thread — that is
//! what `chrome://tracing` / Perfetto require to render at all. The
//! Prometheus exporter's output must survive a from-scratch exposition
//! linter (metric-name charset, `le` monotonicity, `_count`/`_sum`
//! consistency), which the negative cases prove actually rejects
//! malformed expositions rather than waving everything through.

use hpcpower_obs::export::{chrome_trace, lint_prometheus, prometheus, sanitize_metric_name};
use hpcpower_obs::timeline::EventKind;
use hpcpower_obs::{Registry, TimelineEvent, TimelineSnapshot};
use serde_json::Value;

// ---------------------------------------------------------------- chrome

/// Runs nested + threaded spans through the *global* registry and
/// timeline exactly as the CLI does with `--trace-out`, then round-trips
/// the export through the JSON parser.
///
/// One test owns all global-timeline behaviour: the test harness runs
/// `#[test]` fns concurrently and the timeline is process-wide state.
#[test]
fn chrome_trace_round_trips_and_balances() {
    hpcpower_obs::reset();
    hpcpower_obs::enable();
    hpcpower_obs::enable_timeline();
    {
        let _outer = hpcpower_obs::span!("export.test.outer");
        let _inner = hpcpower_obs::span!("export.test.inner");
        let threads: Vec<_> = (0..3)
            .map(|_| {
                std::thread::spawn(|| {
                    for _ in 0..5 {
                        let _w = hpcpower_obs::span!("export.test.worker");
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
    }
    let snap = hpcpower_obs::timeline_snapshot();
    hpcpower_obs::disable_timeline();
    hpcpower_obs::disable();
    assert_eq!(snap.dropped, 0, "tiny workload must not wrap the ring");

    let text = chrome_trace(&snap);
    let doc = serde_json::parse(&text).expect("chrome trace must be valid JSON");
    let root = doc.as_object().expect("root is an object");
    let events = serde_json::find(root, "traceEvents")
        .and_then(Value::as_array)
        .expect("traceEvents array");
    // 2 nested + 3*5 worker spans, Begin and End each.
    assert_eq!(events.len(), 2 * (2 + 15));

    // Per-tid stack replay: every E closes the B on top of its stack,
    // nothing left open, timestamps non-decreasing in file order.
    let mut stacks: std::collections::BTreeMap<u64, Vec<String>> = Default::default();
    let mut last_ts = f64::NEG_INFINITY;
    for ev in events {
        let ev = ev.as_object().expect("event is an object");
        let name = serde_json::find(ev, "name").and_then(Value::as_str).unwrap();
        let ph = serde_json::find(ev, "ph").and_then(Value::as_str).unwrap();
        let tid = serde_json::find(ev, "tid").and_then(Value::as_u64).unwrap();
        let ts = serde_json::find(ev, "ts").and_then(Value::as_f64).unwrap();
        assert_eq!(serde_json::find(ev, "pid").and_then(Value::as_u64), Some(1));
        assert!(ts >= last_ts, "events must be in timestamp order");
        last_ts = ts;
        let args = serde_json::find(ev, "args").and_then(Value::as_object).unwrap();
        assert!(serde_json::find(args, "span_id").and_then(Value::as_u64).is_some());
        let stack = stacks.entry(tid).or_default();
        match ph {
            "B" => stack.push(name.to_string()),
            "E" => {
                let open = stack.pop().unwrap_or_else(|| {
                    panic!("E {name:?} on tid {tid} with no open B")
                });
                assert_eq!(open, name, "E must close the innermost B on its tid");
            }
            other => panic!("unexpected phase {other:?}"),
        }
    }
    for (tid, stack) in &stacks {
        assert!(stack.is_empty(), "tid {tid} left spans open: {stack:?}");
    }
    // The nested pair must live on one tid and nest properly.
    let metadata = serde_json::find(root, "metadata").and_then(Value::as_object).unwrap();
    assert_eq!(
        serde_json::find(metadata, "events_dropped").and_then(Value::as_u64),
        Some(0)
    );
    assert_eq!(
        serde_json::find(metadata, "events_unmatched").and_then(Value::as_u64),
        Some(0)
    );
}

fn ev(kind: EventKind, name: &str, ts_ns: u64, tid: u64, span_id: u64, seq: u64) -> TimelineEvent {
    TimelineEvent {
        kind,
        name: name.to_string(),
        ts_ns,
        tid,
        span_id,
        parent_id: None,
        seq,
    }
}

/// A wrapped ring loses Begin events; the exporter must drop their
/// orphaned Ends (and report them) instead of emitting an unbalanced
/// trace that the viewer rejects.
#[test]
fn chrome_trace_sanitizes_unmatched_events_from_ring_wrap() {
    let snap = TimelineSnapshot {
        events: vec![
            // End whose Begin was overwritten by the ring.
            ev(EventKind::End, "lost", 50, 1, 1, 3),
            ev(EventKind::Begin, "kept", 100, 1, 2, 4),
            ev(EventKind::End, "kept", 200, 1, 2, 5),
        ],
        dropped: 3,
    };
    let text = chrome_trace(&snap);
    let doc = serde_json::parse(&text).expect("valid JSON");
    let root = doc.as_object().unwrap();
    let events = serde_json::find(root, "traceEvents").and_then(Value::as_array).unwrap();
    assert_eq!(events.len(), 2, "only the matched pair survives");
    let metadata = serde_json::find(root, "metadata").and_then(Value::as_object).unwrap();
    assert_eq!(serde_json::find(metadata, "events_dropped").and_then(Value::as_u64), Some(3));
    assert_eq!(serde_json::find(metadata, "events_unmatched").and_then(Value::as_u64), Some(1));
}

/// Names with JSON-hostile characters must be escaped, not emitted raw.
#[test]
fn chrome_trace_escapes_names() {
    let snap = TimelineSnapshot {
        events: vec![
            ev(EventKind::Begin, "quote\"back\\slash", 1, 1, 1, 1),
            ev(EventKind::End, "quote\"back\\slash", 2, 1, 1, 2),
        ],
        dropped: 0,
    };
    let doc = serde_json::parse(&chrome_trace(&snap)).expect("escaped JSON parses");
    let events = serde_json::find(doc.as_object().unwrap(), "traceEvents")
        .and_then(Value::as_array)
        .unwrap();
    let name = serde_json::find(events[0].as_object().unwrap(), "name")
        .and_then(Value::as_str)
        .unwrap();
    assert_eq!(name, "quote\"back\\slash");
}

/// Ring-wrap orphan replay with *deep* nesting: every thread records
/// rounds of depth-5 span stacks into a tiny ring, so wrap-around
/// orphans Ends deep inside a stack, not just at the top. The exporter
/// must still emit a trace whose per-tid B/E replay balances.
#[test]
fn chrome_trace_balances_deeply_nested_spans_after_ring_wrap() {
    use hpcpower_obs::timeline::next_span_id;
    use hpcpower_obs::Timeline;

    const DEPTH: usize = 5;
    fn record_nested(t: &Timeline, depth: usize) {
        let mut ids: Vec<u64> = Vec::with_capacity(depth);
        for d in 0..depth {
            let id = next_span_id();
            t.record(EventKind::Begin, &format!("deep.d{d}"), id, ids.last().copied());
            ids.push(id);
        }
        for d in (0..depth).rev() {
            let parent = if d == 0 { None } else { Some(ids[d - 1]) };
            t.record(EventKind::End, &format!("deep.d{d}"), ids[d], parent);
        }
    }

    // 6 per-shard slots, far below 6 threads x 8 rounds x 10 events:
    // every shard wraps many times over.
    let t = Timeline::with_capacity(48);
    t.set_enabled(true);
    std::thread::scope(|s| {
        for _ in 0..6 {
            s.spawn(|| {
                for _ in 0..8 {
                    record_nested(&t, DEPTH);
                }
            });
        }
    });
    let snap = t.snapshot();
    assert!(snap.dropped > 0, "the ring must actually have wrapped");
    let tids: std::collections::BTreeSet<u64> = snap.events.iter().map(|e| e.tid).collect();
    assert!(tids.len() >= 2, "events must span multiple shards, got {tids:?}");

    let doc = serde_json::parse(&chrome_trace(&snap)).expect("valid JSON after wrap");
    let root = doc.as_object().unwrap();
    let events = serde_json::find(root, "traceEvents").and_then(Value::as_array).unwrap();
    let mut stacks: std::collections::BTreeMap<u64, Vec<String>> = Default::default();
    for ev in events {
        let ev = ev.as_object().unwrap();
        let name = serde_json::find(ev, "name").and_then(Value::as_str).unwrap();
        let tid = serde_json::find(ev, "tid").and_then(Value::as_u64).unwrap();
        match serde_json::find(ev, "ph").and_then(Value::as_str).unwrap() {
            "B" => stacks.entry(tid).or_default().push(name.to_string()),
            "E" => {
                let open = stacks.get_mut(&tid).and_then(Vec::pop);
                assert_eq!(open.as_deref(), Some(name), "E must close the innermost B");
            }
            other => panic!("unexpected phase {other:?}"),
        }
    }
    for (tid, stack) in &stacks {
        assert!(stack.is_empty(), "tid {tid} left spans open: {stack:?}");
    }
    let metadata = serde_json::find(root, "metadata").and_then(Value::as_object).unwrap();
    let unmatched = serde_json::find(metadata, "events_unmatched").and_then(Value::as_u64).unwrap();
    assert!(unmatched > 0, "wrap must orphan some events in this workload");
}

/// Without wrap, a complete depth-5 multi-thread timeline must replay
/// with every level matched — the full stack depth survives export.
#[test]
fn chrome_trace_preserves_full_nesting_depth_across_threads() {
    use hpcpower_obs::timeline::next_span_id;
    use hpcpower_obs::Timeline;

    let t = Timeline::with_capacity(65_536);
    t.set_enabled(true);
    std::thread::scope(|s| {
        for _ in 0..4 {
            s.spawn(|| {
                let mut ids: Vec<u64> = Vec::new();
                for d in 0..5 {
                    let id = next_span_id();
                    t.record(EventKind::Begin, &format!("deep.d{d}"), id, ids.last().copied());
                    ids.push(id);
                }
                for d in (0..5).rev() {
                    let parent = if d == 0 { None } else { Some(ids[d - 1]) };
                    t.record(EventKind::End, &format!("deep.d{d}"), ids[d], parent);
                }
            });
        }
    });
    let snap = t.snapshot();
    assert_eq!(snap.dropped, 0);
    let doc = serde_json::parse(&chrome_trace(&snap)).expect("valid JSON");
    let root = doc.as_object().unwrap();
    let events = serde_json::find(root, "traceEvents").and_then(Value::as_array).unwrap();
    assert_eq!(events.len(), 4 * 2 * 5, "every event survives");
    let mut depth: std::collections::BTreeMap<u64, (usize, usize)> = Default::default();
    for ev in events {
        let ev = ev.as_object().unwrap();
        let tid = serde_json::find(ev, "tid").and_then(Value::as_u64).unwrap();
        let (cur, max) = depth.entry(tid).or_default();
        match serde_json::find(ev, "ph").and_then(Value::as_str).unwrap() {
            "B" => {
                *cur += 1;
                *max = (*max).max(*cur);
            }
            _ => *cur -= 1,
        }
    }
    assert_eq!(depth.len(), 4, "one stack per thread");
    for (tid, (cur, max)) in &depth {
        assert_eq!(*cur, 0, "tid {tid} unbalanced");
        assert_eq!(*max, 5, "tid {tid} lost nesting depth");
    }
    assert_eq!(
        serde_json::find(
            serde_json::find(root, "metadata").and_then(Value::as_object).unwrap(),
            "events_unmatched"
        )
        .and_then(Value::as_u64),
        Some(0)
    );
}

// ------------------------------------------------------------ prometheus

/// A registry with every metric kind exports a lint-clean exposition.
#[test]
fn prometheus_export_passes_the_linter() {
    let r = Registry::new();
    r.set_enabled(true);
    r.counter_add("sim.jobs.placed", 42);
    r.gauge_set("sim.queue.depth", 7.5);
    for v in [0.5, 1.0, 2.0, 250.0, 300.0, 1e6] {
        r.histogram_record("power.node_w", v);
    }
    r.record_span("report.render", None, 1_200_000);
    r.record_span("report.render", None, 2_400_000);
    let text = prometheus(&r.snapshot());
    lint_prometheus(&text).unwrap_or_else(|e| panic!("lint failed: {e}\n---\n{text}"));
    assert!(text.contains("# TYPE sim_jobs_placed_total counter"));
    assert!(text.contains("sim_jobs_placed_total 42"));
    assert!(text.contains("# TYPE power_node_w histogram"));
    assert!(text.contains("power_node_w_bucket{le=\"+Inf\"} 6"));
    assert!(text.contains("power_node_w_count 6"));
    assert!(text.contains("# TYPE report_render_seconds summary"));
    assert!(text.contains("report_render_seconds{quantile=\"0.99\"}"));
    assert!(text.contains("report_render_seconds_count 2"));
}

/// An empty registry still exports a lint-clean (empty) exposition.
#[test]
fn prometheus_export_of_empty_snapshot_is_clean() {
    let r = Registry::new();
    let text = prometheus(&r.snapshot());
    lint_prometheus(&text).expect("empty exposition lints clean");
}

#[test]
fn sanitizer_maps_names_into_the_prometheus_charset() {
    assert_eq!(sanitize_metric_name("sim.jobs.placed"), "sim_jobs_placed");
    assert_eq!(sanitize_metric_name("power/node-w"), "power_node_w");
    assert_eq!(sanitize_metric_name("0weird"), "_0weird");
}

// The linter must reject malformed expositions — otherwise the positive
// test above proves nothing.

#[test]
fn linter_rejects_bad_metric_name() {
    let text = "# TYPE bad-name counter\nbad-name 1\n";
    assert!(lint_prometheus(text).is_err(), "dash in a metric name must fail");
}

#[test]
fn linter_rejects_unknown_type() {
    let text = "# TYPE m widget\nm 1\n";
    assert!(lint_prometheus(text).is_err());
}

#[test]
fn linter_rejects_non_monotone_le_bounds() {
    let text = "\
# TYPE h histogram
h_bucket{le=\"10\"} 1
h_bucket{le=\"5\"} 2
h_bucket{le=\"+Inf\"} 3
h_sum 12
h_count 3
";
    let err = lint_prometheus(text).unwrap_err();
    assert!(err.contains("le"), "error should name the le bounds: {err}");
}

#[test]
fn linter_rejects_non_cumulative_bucket_counts() {
    let text = "\
# TYPE h histogram
h_bucket{le=\"5\"} 4
h_bucket{le=\"10\"} 2
h_bucket{le=\"+Inf\"} 4
h_sum 12
h_count 4
";
    assert!(lint_prometheus(text).is_err(), "bucket counts must be cumulative");
}

#[test]
fn linter_rejects_count_inconsistent_with_inf_bucket() {
    let text = "\
# TYPE h histogram
h_bucket{le=\"5\"} 1
h_bucket{le=\"+Inf\"} 3
h_sum 12
h_count 7
";
    assert!(lint_prometheus(text).is_err(), "_count must equal the +Inf bucket");
}

#[test]
fn linter_rejects_histogram_missing_sum() {
    let text = "\
# TYPE h histogram
h_bucket{le=\"+Inf\"} 3
h_count 3
";
    assert!(lint_prometheus(text).is_err(), "histograms need _sum");
}

#[test]
fn linter_rejects_summary_quantile_out_of_range() {
    let text = "\
# TYPE s summary
s{quantile=\"1.5\"} 3
s_sum 9
s_count 3
";
    assert!(lint_prometheus(text).is_err(), "quantile label must be in [0, 1]");
}

#[test]
fn linter_rejects_unescaped_quote_in_label_value() {
    // The raw quote ends the value early, leaving `y"` as garbage.
    let text = "# TYPE m gauge\nm{a=\"x\"y\"} 1\n";
    let err = lint_prometheus(text).unwrap_err();
    assert!(err.contains("label"), "error should blame the label set: {err}");
}

#[test]
fn linter_rejects_unterminated_label_value() {
    let text = "# TYPE m gauge\nm{a=\"x} 1\n";
    assert!(lint_prometheus(text).is_err(), "missing closing quote must fail");
}

#[test]
fn linter_rejects_trailing_backslash_in_label_value() {
    // `x\` swallows the closing quote, so the value never terminates.
    let text = "# TYPE m gauge\nm{a=\"x\\\"} 1\n";
    let err = lint_prometheus(text).unwrap_err();
    assert!(err.contains("unterminated"), "got: {err}");
}

/// Escaped label values — exactly what `escape_label_value` emits —
/// must parse, proving the negative cases above fail for the right
/// reason.
#[test]
fn linter_accepts_escaped_label_values() {
    let text = "# TYPE m gauge\nm{a=\"x\\\\y\\\"z\\n\"} 1\n";
    lint_prometheus(text).unwrap_or_else(|e| panic!("escaped value must lint: {e}"));
}

/// The profiler's meta-metrics (`obs.alloc.*`, `obs.profile.*`) ride
/// the normal export path: dotted names must sanitize into the
/// Prometheus charset and the document must lint clean.
#[test]
fn prometheus_exports_profiler_meta_metrics() {
    let r = Registry::new();
    r.set_enabled(true);
    r.counter_add("obs.alloc.allocations", 1234);
    r.counter_add("obs.alloc.allocated_bytes", 1 << 20);
    r.gauge_set("obs.alloc.peak_bytes", 524_288.0);
    r.gauge_set("obs.profile.nodes", 17.0);
    r.gauge_set("obs.profile.orphan_events", 0.0);
    let text = prometheus(&r.snapshot());
    lint_prometheus(&text).unwrap_or_else(|e| panic!("lint failed: {e}\n---\n{text}"));
    assert!(text.contains("# TYPE obs_alloc_allocations_total counter"));
    assert!(text.contains("obs_alloc_allocated_bytes_total 1048576"));
    assert!(text.contains("# TYPE obs_profile_nodes gauge"));
    assert!(text.contains("obs_profile_nodes 17"));
    // HELP comments echo the original dotted name; the sample lines
    // themselves must be fully sanitized.
    assert!(
        text.lines().filter(|l| !l.starts_with('#')).all(|l| !l.contains("obs.")),
        "dots must not survive sanitization in sample lines:\n{text}"
    );
}

/// ...and the linter genuinely rejects the unsanitized form, so the
/// positive case above is load-bearing.
#[test]
fn linter_rejects_dotted_profiler_metric_names() {
    let text = "# TYPE obs.alloc.peak_bytes gauge\nobs.alloc.peak_bytes 1\n";
    assert!(lint_prometheus(text).is_err(), "dotted name must fail the charset check");
}

// ------------------------------------------------------------ build info

/// The build-info gauge rides HELP/label escaping end-to-end: hostile
/// characters in the recorded sha/version must come out escaped and
/// the document must still lint.
#[test]
fn prometheus_build_info_is_emitted_and_escaped() {
    let r = Registry::new();
    r.set_enabled(true);
    r.counter_add("c", 1);
    let mut snap = r.snapshot();
    snap.build_info = Some(hpcpower_obs::BuildInfo {
        git_sha: "abc\\123\"x\ny".to_string(),
        version: "0.1.0".to_string(),
    });
    let text = prometheus(&snap);
    lint_prometheus(&text).unwrap_or_else(|e| panic!("lint failed: {e}\n---\n{text}"));
    assert!(text.contains("# TYPE hpcpower_build_info gauge"));
    assert!(
        text.contains("hpcpower_build_info{git_sha=\"abc\\\\123\\\"x\\ny\",version=\"0.1.0\"} 1"),
        "backslash, quote, and newline must be escaped:\n{text}"
    );
    assert!(
        !text.contains("abc\\123\"x\ny"),
        "raw hostile characters must not appear"
    );
}

/// HELP text escaping (the other half of the exposition's escaping
/// rules): backslashes and newlines in metric names — which the
/// exporter echoes into HELP — must be escaped.
#[test]
fn prometheus_help_text_is_escaped() {
    let r = Registry::new();
    r.set_enabled(true);
    r.counter_add("weird\\name\nwith.newline", 1);
    let text = prometheus(&r.snapshot());
    lint_prometheus(&text).unwrap_or_else(|e| panic!("lint failed: {e}\n---\n{text}"));
    assert!(
        text.contains("weird\\\\name\\nwith.newline"),
        "HELP must escape backslash and newline:\n{text}"
    );
}
