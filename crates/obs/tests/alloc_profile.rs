//! End-to-end allocation attribution: this test binary installs
//! `ProfiledAllocator` as its global allocator, so heap traffic made
//! inside spans really flows through the recording path.
//!
//! The allocation gate and its counters are process-global, and tests
//! within a binary run concurrently — so everything lives in ONE test
//! function with explicit phases instead of several racing ones.

use hpcpower_obs::{alloc, ProfiledAllocator};

#[global_allocator]
static ALLOC: ProfiledAllocator = ProfiledAllocator;

/// Allocates (and leaks nothing) roughly `n` bytes in chunks.
fn churn(n: usize) -> usize {
    let v: Vec<u8> = vec![0xAB; n];
    v.iter().map(|&b| usize::from(b & 1)).sum()
}

#[test]
fn allocator_attributes_traffic_to_spans() {
    // Phase 1: gate off — the wrapper must record nothing.
    assert!(!alloc::is_enabled(), "gate starts disabled");
    let before = alloc::totals();
    std::hint::black_box(churn(64 * 1024));
    assert_eq!(
        alloc::totals(),
        before,
        "disabled gate must not record allocator traffic"
    );

    // Phase 2: gate on, traffic inside a nested span pair. Spans only
    // switch the attribution slot when registry telemetry is live too.
    hpcpower_obs::enable();
    alloc::set_enabled(true);
    alloc::reset();
    const INNER_BYTES: usize = 1 << 20; // 1 MiB in one shot
    {
        let _outer = hpcpower_obs::span!("alloc.e2e.outer");
        std::hint::black_box(churn(100 * 1024));
        {
            let _inner = hpcpower_obs::span!("alloc.e2e.inner");
            std::hint::black_box(churn(INNER_BYTES));
        }
    }
    let snap = alloc::snapshot();
    alloc::set_enabled(false);
    hpcpower_obs::disable();

    assert!(snap.enabled);
    assert!(
        snap.alloc_bytes >= (INNER_BYTES + 100 * 1024) as u64,
        "totals cover both spans' traffic: {}",
        snap.alloc_bytes
    );
    assert!(
        snap.peak_bytes >= INNER_BYTES as u64,
        "the 1 MiB vector was live at some point: peak {}",
        snap.peak_bytes
    );
    // The inner path got at least its 1 MiB attributed.
    let inner_slot = snap
        .slots
        .iter()
        .position(|s| s.name == "alloc.e2e.inner")
        .expect("inner span interned a slot");
    assert_eq!(
        snap.slot_path(inner_slot as u32),
        vec!["alloc.e2e.outer".to_string(), "alloc.e2e.inner".to_string()],
        "slot path walks back through the parent"
    );
    assert!(
        snap.slots[inner_slot].alloc_bytes >= INNER_BYTES as u64,
        "inner span's slot saw the 1 MiB allocation: {}",
        snap.slots[inner_slot].alloc_bytes
    );
    let outer_slot = snap
        .slots
        .iter()
        .position(|s| s.name == "alloc.e2e.outer")
        .expect("outer span interned a slot");
    assert!(
        snap.slots[outer_slot].alloc_bytes >= 100 * 1024,
        "outer span's own traffic attributed to the outer slot"
    );

    // Phase 3: the obs.alloc.* metrics ride a registry snapshot while
    // both gates are on.
    hpcpower_obs::enable();
    alloc::set_enabled(true);
    let metrics = hpcpower_obs::snapshot();
    assert!(
        metrics.counter("obs.alloc.allocations").unwrap_or(0) > 0,
        "obs.alloc.allocations injected into the snapshot"
    );
    assert!(metrics.gauge("obs.alloc.peak_bytes").unwrap_or(0.0) >= INNER_BYTES as f64);
    alloc::set_enabled(false);
    let without = hpcpower_obs::snapshot();
    assert_eq!(
        without.counter("obs.alloc.allocations"),
        None,
        "obs.alloc.* only appear while the gate is on"
    );
    hpcpower_obs::disable();

    // Phase 4: reset zeroes the stats but keeps interned paths valid.
    alloc::reset();
    let cleared = alloc::snapshot();
    assert_eq!(cleared.alloc_count, 0);
    assert_eq!(cleared.slots[inner_slot].alloc_bytes, 0);
    assert_eq!(
        cleared.slot_path(inner_slot as u32).len(),
        2,
        "slot table survives reset so cached slot ids stay valid"
    );
}
