//! Profile-graph construction and exporter contracts on synthetic
//! timelines: deterministic output, correct self-time math, per-thread
//! merging, ring-wrap orphan accounting, and folded/speedscope
//! round-trips. Synthetic `TimelineSnapshot`s (no global state, no
//! clocks) make every expectation exact.

use hpcpower_obs::timeline::{EventKind, TimelineEvent, TimelineSnapshot};
use hpcpower_obs::{FlatProfile, ProfileGraph};

fn ev(
    kind: EventKind,
    name: &str,
    ts_ns: u64,
    tid: u64,
    span_id: u64,
    parent_id: Option<u64>,
    seq: u64,
) -> TimelineEvent {
    TimelineEvent {
        kind,
        name: name.to_string(),
        ts_ns,
        tid,
        span_id,
        parent_id,
        seq,
    }
}

/// One thread: `outer` (100 ns) containing `inner` (30 ns).
fn nested_timeline() -> TimelineSnapshot {
    TimelineSnapshot {
        events: vec![
            ev(EventKind::Begin, "outer", 0, 1, 1, None, 0),
            ev(EventKind::Begin, "inner", 20, 1, 2, Some(1), 1),
            ev(EventKind::End, "inner", 50, 1, 2, Some(1), 2),
            ev(EventKind::End, "outer", 100, 1, 1, None, 3),
        ],
        dropped: 0,
    }
}

#[test]
fn self_time_excludes_child_time() {
    let graph = ProfileGraph::from_timeline(&nested_timeline());
    assert_eq!(graph.nodes.len(), 2);
    assert_eq!(graph.roots.len(), 1);
    let outer = &graph.nodes[graph.roots[0]];
    assert_eq!(outer.name, "outer");
    assert_eq!(outer.count, 1);
    assert_eq!(outer.total_ns, 100);
    assert_eq!(outer.self_ns, 70, "100 total minus 30 in the child");
    let inner = &graph.nodes[outer.children[0]];
    assert_eq!(inner.name, "inner");
    assert_eq!(inner.total_ns, 30);
    assert_eq!(inner.self_ns, 30);
    assert_eq!(inner.parent, Some(graph.roots[0]));
    assert_eq!(graph.total_ns, 100);
    assert_eq!(graph.threads, 1);
    assert_eq!(graph.orphan_begins + graph.orphan_ends, 0);
}

#[test]
fn threads_merge_by_call_path() {
    // The same outer/inner path on two threads, plus a different root
    // on the second thread; identical paths merge, distinct paths
    // stay separate even when the span name matches ("inner" under a
    // different parent is a different node).
    let snap = TimelineSnapshot {
        events: vec![
            ev(EventKind::Begin, "outer", 0, 1, 1, None, 0),
            ev(EventKind::Begin, "inner", 10, 1, 2, Some(1), 1),
            ev(EventKind::Begin, "outer", 5, 2, 3, None, 2),
            ev(EventKind::Begin, "inner", 15, 2, 4, Some(3), 3),
            ev(EventKind::End, "inner", 30, 1, 2, Some(1), 4),
            ev(EventKind::End, "inner", 35, 2, 4, Some(3), 5),
            ev(EventKind::End, "outer", 60, 1, 1, None, 6),
            ev(EventKind::End, "outer", 65, 2, 3, None, 7),
            ev(EventKind::Begin, "other", 70, 2, 5, None, 8),
            ev(EventKind::Begin, "inner", 75, 2, 6, Some(5), 9),
            ev(EventKind::End, "inner", 80, 2, 6, Some(5), 10),
            ev(EventKind::End, "other", 90, 2, 5, None, 11),
        ],
        dropped: 0,
    };
    let graph = ProfileGraph::from_timeline(&snap);
    assert_eq!(graph.threads, 2);
    assert_eq!(graph.roots.len(), 2, "outer and other");
    let outer = graph
        .roots
        .iter()
        .map(|&r| &graph.nodes[r])
        .find(|n| n.name == "outer")
        .unwrap();
    assert_eq!(outer.count, 2, "both threads' outer spans merged");
    assert_eq!(outer.total_ns, 60 + 60);
    let outer_inner = &graph.nodes[outer.children[0]];
    assert_eq!(outer_inner.count, 2);
    assert_eq!(outer_inner.total_ns, 20 + 20);
    let other = graph
        .roots
        .iter()
        .map(|&r| &graph.nodes[r])
        .find(|n| n.name == "other")
        .unwrap();
    let other_inner = &graph.nodes[other.children[0]];
    assert_eq!(other_inner.count, 1, "same name, different path, own node");
}

#[test]
fn ring_wrap_orphans_are_counted_not_guessed() {
    // An End without its Begin (lost to ring wrap) and a Begin without
    // its End (span still open at snapshot time).
    let snap = TimelineSnapshot {
        events: vec![
            ev(EventKind::End, "wrapped", 10, 1, 99, None, 0),
            ev(EventKind::Begin, "root", 20, 1, 1, None, 1),
            ev(EventKind::Begin, "open", 30, 1, 2, Some(1), 2),
            ev(EventKind::End, "root", 50, 1, 1, None, 3),
        ],
        dropped: 7,
    };
    let graph = ProfileGraph::from_timeline(&snap);
    assert_eq!(graph.orphan_ends, 1, "the wrapped End");
    // "open" never ended: its frame survives the replay. "root" ended
    // while "open" was still on the stack (out-of-order pop), which the
    // rposition fallback handles.
    assert_eq!(graph.orphan_begins, 1);
    assert_eq!(graph.dropped_events, 7);
    let root = graph
        .nodes
        .iter()
        .find(|n| n.name == "root")
        .expect("root recorded");
    assert_eq!(root.count, 1);
    assert_eq!(root.total_ns, 30);
    let open = graph.nodes.iter().find(|n| n.name == "open").unwrap();
    assert_eq!(open.count, 0, "an orphan Begin contributes no time");
    assert_eq!(open.total_ns, 0);
}

#[test]
fn folded_export_is_deterministic_and_round_trips() {
    let graph = ProfileGraph::from_timeline(&nested_timeline());
    let folded = graph.to_folded();
    assert_eq!(folded, "outer 70\nouter;inner 30\n");
    assert_eq!(
        graph.to_folded(),
        folded,
        "same timeline, same bytes, every time"
    );
    let parsed = FlatProfile::from_folded(&folded).unwrap();
    assert_eq!(parsed, graph.flatten(), "folded round-trips the flat view");
    assert_eq!(parsed.total_ns(), 100);
}

#[test]
fn folded_sanitizes_reserved_characters() {
    let snap = TimelineSnapshot {
        events: vec![
            ev(EventKind::Begin, "a;b c", 0, 1, 1, None, 0),
            ev(EventKind::End, "a;b c", 10, 1, 1, None, 1),
        ],
        dropped: 0,
    };
    let folded = ProfileGraph::from_timeline(&snap).to_folded();
    assert_eq!(folded, "a:b_c 10\n");
    assert!(FlatProfile::from_folded(&folded).is_ok());
}

#[test]
fn speedscope_export_is_deterministic_and_round_trips() {
    let mut graph = ProfileGraph::from_timeline(&nested_timeline());
    // Give the inner node some attributed bytes so the second profile
    // is exercised too.
    let inner = graph.nodes.iter().position(|n| n.name == "inner").unwrap();
    graph.nodes[inner].alloc_bytes = 4096;
    let doc = graph.to_speedscope();
    assert_eq!(graph.to_speedscope(), doc, "deterministic bytes");
    let v = serde_json::parse(&doc).expect("speedscope export is valid JSON");
    let top = v.as_object().unwrap();
    let profiles = serde_json::find(top, "profiles").unwrap().as_array().unwrap();
    assert_eq!(profiles.len(), 2, "wall time + allocated bytes");
    let parsed = FlatProfile::from_speedscope(&doc).unwrap();
    assert_eq!(parsed.total_ns(), 100);
    assert_eq!(parsed.total_bytes(), 4096);
    let inner_entry = parsed
        .entries
        .iter()
        .find(|e| e.stack == ["outer", "inner"])
        .expect("inner path present");
    assert_eq!(inner_entry.self_ns, 30);
    assert_eq!(inner_entry.self_bytes, 4096);
    // Auto-detection picks the speedscope parser for a '{' document.
    assert_eq!(FlatProfile::parse(&doc).unwrap(), parsed);
}

#[test]
fn svg_export_is_wellformed_and_escapes_names() {
    let snap = TimelineSnapshot {
        events: vec![
            ev(EventKind::Begin, "a<b&\"c", 0, 1, 1, None, 0),
            ev(EventKind::End, "a<b&\"c", 50, 1, 1, None, 1),
        ],
        dropped: 0,
    };
    let graph = ProfileGraph::from_timeline(&snap);
    let svg = graph.to_svg();
    assert_eq!(graph.to_svg(), svg, "deterministic bytes");
    assert!(svg.starts_with("<svg "));
    assert!(svg.trim_end().ends_with("</svg>"));
    assert!(
        svg.contains("a&lt;b&amp;&quot;c"),
        "span name is XML-escaped: {svg}"
    );
    assert!(
        !svg.contains("a<b"),
        "raw angle bracket must not survive into markup"
    );
    // Structural sanity: every opened <g> closes.
    assert_eq!(svg.matches("<g>").count(), svg.matches("</g>").count());
    assert!(svg.contains("<title>"), "hover tooltips present");
}

#[test]
fn empty_timeline_produces_empty_but_valid_exports() {
    let graph = ProfileGraph::from_timeline(&TimelineSnapshot {
        events: vec![],
        dropped: 0,
    });
    assert_eq!(graph.nodes.len(), 0);
    assert_eq!(graph.to_folded(), "");
    let svg = graph.to_svg();
    assert!(svg.starts_with("<svg ") && svg.trim_end().ends_with("</svg>"));
    let parsed = FlatProfile::from_speedscope(&graph.to_speedscope()).unwrap();
    assert_eq!(parsed.entries.len(), 0);
}

#[test]
fn alloc_attribution_lands_on_matching_paths() {
    use hpcpower_obs::alloc::{AllocSnapshot, SlotSnapshot};
    let mut graph = ProfileGraph::from_timeline(&nested_timeline());
    // Slot layout mirroring crate::alloc: 0 = root, 1 = overflow, then
    // interned paths. Slot 2 = outer (parent root), slot 3 = inner
    // (parent slot 2), slot 4 = a path the timeline never saw.
    let slot = |name: &str, parent: u32, count: u64, bytes: u64| SlotSnapshot {
        name: name.to_string(),
        parent,
        alloc_count: count,
        alloc_bytes: bytes,
        dealloc_count: 0,
        dealloc_bytes: 0,
    };
    let alloc = AllocSnapshot {
        enabled: true,
        alloc_count: 13,
        alloc_bytes: 1110,
        dealloc_count: 0,
        dealloc_bytes: 0,
        current_bytes: 1110,
        peak_bytes: 1110,
        slots: vec![
            slot("(root)", 0, 1, 10),
            slot("(overflow)", 0, 2, 100),
            slot("outer", 0, 4, 400),
            slot("inner", 2, 5, 500),
            slot("unseen", 0, 1, 100),
        ],
    };
    graph.attach_alloc(&alloc);
    let outer = &graph.nodes[graph.roots[0]];
    assert_eq!(outer.alloc_bytes, 400);
    assert_eq!(outer.alloc_count, 4);
    let inner = &graph.nodes[outer.children[0]];
    assert_eq!(inner.alloc_bytes, 500);
    // Root traffic, overflow traffic, and the path the timeline lost
    // all land in the unattributed bucket — nothing silently dropped.
    assert_eq!(graph.unattributed_alloc_bytes, 10 + 100 + 100);
    assert_eq!(graph.unattributed_alloc_count, 1 + 2 + 1);
    assert_eq!(graph.attributed_alloc_bytes(), 900);
}
