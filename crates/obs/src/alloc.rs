//! Opt-in allocation profiling: a `#[global_allocator]` wrapper that
//! attributes heap traffic to the innermost active span.
//!
//! [`ProfiledAllocator`] wraps [`std::alloc::System`]. Binaries that
//! want allocation attribution install it once:
//!
//! ```ignore
//! #[global_allocator]
//! static ALLOC: hpcpower_obs::ProfiledAllocator = hpcpower_obs::ProfiledAllocator;
//! ```
//!
//! Recording is behind its own enable gate (the fourth one, next to the
//! registry, timeline, and sampling gates): with the gate off — the
//! default — every allocator call costs the underlying `System` call
//! plus **one relaxed atomic load**, asserted by
//! `tests/overhead.rs`. Installing the wrapper in a binary that never
//! enables profiling is therefore free in practice.
//!
//! ## Attribution model
//!
//! Spans double as the logical call stack (see [`crate::profile`]).
//! Every *call path* of span names gets a **slot**: a fixed-size row of
//! atomics holding alloc/dealloc counts and bytes. A thread-local cell
//! carries the slot of the innermost active span; [`SpanGuard`]
//! (`crate::span::SpanGuard`) switches it on enter/drop when the gate
//! is on. The allocator's hot path only reads that cell and bumps
//! atomics — it never takes a lock, allocates, or touches lazy-init
//! thread-local state, so it cannot recurse or deadlock. Slot-table
//! mutation (interning a new `(parent, name)` path) happens in the span
//! guard, outside the allocator.
//!
//! The slot table is bounded ([`MAX_SLOTS`]); once full, new paths
//! collapse into a dedicated overflow slot, so attribution degrades
//! gracefully instead of growing without bound. Slot 0 is the root:
//! allocations made outside any span (or on threads with no span
//! active).
//!
//! Totals (`alloc`/`dealloc` counts and bytes, live bytes, high-water
//! peak) are process-wide atomics; [`crate::snapshot`] surfaces them as
//! `obs.alloc.*` metrics when the gate is enabled.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering};
use std::sync::Mutex;

/// Maximum number of distinct span call paths that get their own
/// attribution slot; paths beyond this collapse into the overflow
/// slot.
pub const MAX_SLOTS: usize = 512;

/// Slot index of the root (no span active).
pub const ROOT_SLOT: u32 = 0;

/// Slot index that absorbs paths once the table is full.
pub const OVERFLOW_SLOT: u32 = 1;

static ENABLED: AtomicBool = AtomicBool::new(false);

static TOTAL_ALLOC_COUNT: AtomicU64 = AtomicU64::new(0);
static TOTAL_ALLOC_BYTES: AtomicU64 = AtomicU64::new(0);
static TOTAL_DEALLOC_COUNT: AtomicU64 = AtomicU64::new(0);
static TOTAL_DEALLOC_BYTES: AtomicU64 = AtomicU64::new(0);
/// Live (allocated-minus-freed) bytes observed since enable. Signed:
/// frees of blocks allocated before the gate came on would otherwise
/// underflow.
static CURRENT_BYTES: AtomicI64 = AtomicI64::new(0);
static PEAK_BYTES: AtomicI64 = AtomicI64::new(0);

/// Per-slot attribution counters. Fixed-size atomics so the allocator
/// path is bounds-check plus `fetch_add`, never a resize.
struct SlotStat {
    alloc_count: AtomicU64,
    alloc_bytes: AtomicU64,
    dealloc_count: AtomicU64,
    dealloc_bytes: AtomicU64,
}

#[allow(clippy::declare_interior_mutable_const)]
const SLOT_STAT_INIT: SlotStat = SlotStat {
    alloc_count: AtomicU64::new(0),
    alloc_bytes: AtomicU64::new(0),
    dealloc_count: AtomicU64::new(0),
    dealloc_bytes: AtomicU64::new(0),
};

static SLOT_STATS: [SlotStat; MAX_SLOTS] = [SLOT_STAT_INIT; MAX_SLOTS];

/// Interned call paths: `(parent_slot, span name) -> slot`. Mutated
/// only from span-guard code (never from the allocator), so the lock
/// is safe to take there.
struct SlotTable {
    /// `slots[i] = (name, parent_slot)`; indices 0 and 1 are the
    /// reserved root and overflow slots.
    slots: Vec<(String, u32)>,
    lookup: HashMap<(u32, String), u32>,
}

fn slot_table() -> &'static Mutex<SlotTable> {
    static TABLE: std::sync::OnceLock<Mutex<SlotTable>> = std::sync::OnceLock::new();
    TABLE.get_or_init(|| {
        Mutex::new(SlotTable {
            slots: vec![
                ("(root)".to_string(), ROOT_SLOT),
                ("(overflow)".to_string(), ROOT_SLOT),
            ],
            lookup: HashMap::new(),
        })
    })
}

thread_local! {
    // const-init: reading this from the allocator must never allocate
    // or run lazy initialization.
    static CURRENT_SLOT: Cell<u32> = const { Cell::new(ROOT_SLOT) };
}

/// Whether allocation profiling is recording (default: off).
#[inline]
pub fn is_enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Turns allocation recording on or off. Only has an observable effect
/// in binaries that installed [`ProfiledAllocator`].
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Slot carried by the current thread for the innermost active span.
#[inline]
pub(crate) fn current_slot() -> u32 {
    // try_with: the allocator can run during thread teardown, after the
    // thread-local was dropped — attribute to the root then.
    CURRENT_SLOT.try_with(Cell::get).unwrap_or(ROOT_SLOT)
}

/// Switches the current thread's attribution slot to the child path
/// `(current, name)`, interning it if new, and returns the previous
/// slot for the caller to restore. Called from span-guard enter when
/// the gate is on.
pub(crate) fn enter_scope(name: &str) -> u32 {
    let prev = CURRENT_SLOT.try_with(Cell::get).unwrap_or(ROOT_SLOT);
    let child = slot_for(prev, name);
    let _ = CURRENT_SLOT.try_with(|c| c.set(child));
    prev
}

/// Restores the attribution slot saved by [`enter_scope`]. Called from
/// span-guard drop.
pub(crate) fn restore_scope(slot: u32) {
    let _ = CURRENT_SLOT.try_with(|c| c.set(slot));
}

fn slot_for(parent: u32, name: &str) -> u32 {
    let mut table = slot_table()
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    if let Some(&slot) = table.lookup.get(&(parent, name.to_string())) {
        return slot;
    }
    if table.slots.len() >= MAX_SLOTS {
        return OVERFLOW_SLOT;
    }
    let slot = table.slots.len() as u32;
    table.slots.push((name.to_string(), parent));
    table.lookup.insert((parent, name.to_string()), slot);
    slot
}

#[inline]
fn record_alloc(size: usize) {
    let size = size as u64;
    TOTAL_ALLOC_COUNT.fetch_add(1, Ordering::Relaxed);
    TOTAL_ALLOC_BYTES.fetch_add(size, Ordering::Relaxed);
    let cur = CURRENT_BYTES.fetch_add(size as i64, Ordering::Relaxed) + size as i64;
    let mut peak = PEAK_BYTES.load(Ordering::Relaxed);
    while cur > peak {
        match PEAK_BYTES.compare_exchange_weak(peak, cur, Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => break,
            Err(p) => peak = p,
        }
    }
    let slot = current_slot() as usize;
    let stat = &SLOT_STATS[slot.min(MAX_SLOTS - 1)];
    stat.alloc_count.fetch_add(1, Ordering::Relaxed);
    stat.alloc_bytes.fetch_add(size, Ordering::Relaxed);
}

#[inline]
fn record_dealloc(size: usize) {
    let size = size as u64;
    TOTAL_DEALLOC_COUNT.fetch_add(1, Ordering::Relaxed);
    TOTAL_DEALLOC_BYTES.fetch_add(size, Ordering::Relaxed);
    CURRENT_BYTES.fetch_sub(size as i64, Ordering::Relaxed);
    let slot = current_slot() as usize;
    let stat = &SLOT_STATS[slot.min(MAX_SLOTS - 1)];
    stat.dealloc_count.fetch_add(1, Ordering::Relaxed);
    stat.dealloc_bytes.fetch_add(size, Ordering::Relaxed);
}

/// A `#[global_allocator]` wrapper over [`System`] that attributes
/// heap traffic to the innermost active span when the allocation gate
/// is enabled (see the module docs for the install snippet and the
/// disabled-cost contract).
#[derive(Debug, Default, Clone, Copy)]
pub struct ProfiledAllocator;

// SAFETY: delegates every allocation verbatim to `System`; the
// recording side touches only atomics and a const-init thread-local,
// so it neither allocates nor unwinds.
unsafe impl GlobalAlloc for ProfiledAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let p = unsafe { System.alloc(layout) };
        if !p.is_null() && is_enabled() {
            record_alloc(layout.size());
        }
        p
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        let p = unsafe { System.alloc_zeroed(layout) };
        if !p.is_null() && is_enabled() {
            record_alloc(layout.size());
        }
        p
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) };
        if is_enabled() {
            record_dealloc(layout.size());
        }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let p = unsafe { System.realloc(ptr, layout, new_size) };
        if !p.is_null() && is_enabled() {
            record_dealloc(layout.size());
            record_alloc(new_size);
        }
        p
    }
}

/// Frozen per-slot attribution counters plus the path metadata needed
/// to map them back onto a span call path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SlotSnapshot {
    /// Span name of the innermost frame of this path (`"(root)"` /
    /// `"(overflow)"` for the reserved slots).
    pub name: String,
    /// Slot index of the enclosing path (the root slot points at
    /// itself).
    pub parent: u32,
    /// Allocations attributed to this path.
    pub alloc_count: u64,
    /// Bytes allocated under this path.
    pub alloc_bytes: u64,
    /// Deallocations attributed to this path.
    pub dealloc_count: u64,
    /// Bytes freed under this path.
    pub dealloc_bytes: u64,
}

/// Frozen view of the allocation profiler: process-wide totals plus
/// the per-call-path slots.
#[derive(Debug, Clone, Default)]
pub struct AllocSnapshot {
    /// Whether the gate was enabled when the snapshot was taken.
    pub enabled: bool,
    /// Total allocations recorded.
    pub alloc_count: u64,
    /// Total bytes allocated.
    pub alloc_bytes: u64,
    /// Total deallocations recorded.
    pub dealloc_count: u64,
    /// Total bytes freed.
    pub dealloc_bytes: u64,
    /// Live bytes (allocated minus freed, clamped at 0 — frees of
    /// pre-gate blocks can push the raw balance negative).
    pub current_bytes: u64,
    /// High-water mark of live bytes since enable/reset.
    pub peak_bytes: u64,
    /// Per-call-path attribution, indexed by slot (0 = root,
    /// 1 = overflow).
    pub slots: Vec<SlotSnapshot>,
}

impl AllocSnapshot {
    /// The names along slot `i`'s call path, outermost first (the
    /// reserved root frame is omitted). Empty for the root slot;
    /// `["(overflow)"]` for the overflow slot.
    pub fn slot_path(&self, mut i: u32) -> Vec<String> {
        let mut rev = Vec::new();
        while i != ROOT_SLOT {
            let Some(slot) = self.slots.get(i as usize) else {
                break;
            };
            rev.push(slot.name.clone());
            i = slot.parent;
        }
        rev.reverse();
        rev
    }
}

/// Takes a frozen copy of the allocation profiler's state.
pub fn snapshot() -> AllocSnapshot {
    let table = slot_table()
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    let slots = table
        .slots
        .iter()
        .enumerate()
        .map(|(i, (name, parent))| {
            let stat = &SLOT_STATS[i];
            SlotSnapshot {
                name: name.clone(),
                parent: *parent,
                alloc_count: stat.alloc_count.load(Ordering::Relaxed),
                alloc_bytes: stat.alloc_bytes.load(Ordering::Relaxed),
                dealloc_count: stat.dealloc_count.load(Ordering::Relaxed),
                dealloc_bytes: stat.dealloc_bytes.load(Ordering::Relaxed),
            }
        })
        .collect();
    AllocSnapshot {
        enabled: is_enabled(),
        alloc_count: TOTAL_ALLOC_COUNT.load(Ordering::Relaxed),
        alloc_bytes: TOTAL_ALLOC_BYTES.load(Ordering::Relaxed),
        dealloc_count: TOTAL_DEALLOC_COUNT.load(Ordering::Relaxed),
        dealloc_bytes: TOTAL_DEALLOC_BYTES.load(Ordering::Relaxed),
        current_bytes: CURRENT_BYTES.load(Ordering::Relaxed).max(0) as u64,
        peak_bytes: PEAK_BYTES.load(Ordering::Relaxed).max(0) as u64,
        slots,
    }
}

/// `(alloc_count, alloc_bytes)` so far — cheap to read around a stage
/// boundary for delta accounting (the bench harness does this).
pub fn totals() -> (u64, u64) {
    (
        TOTAL_ALLOC_COUNT.load(Ordering::Relaxed),
        TOTAL_ALLOC_BYTES.load(Ordering::Relaxed),
    )
}

/// High-water mark of live bytes since enable or the last
/// [`reset_peak`]/[`reset`].
pub fn peak_bytes() -> u64 {
    PEAK_BYTES.load(Ordering::Relaxed).max(0) as u64
}

/// Re-arms the high-water mark at the current live-byte level, so the
/// next read reports the peak of the region that follows.
pub fn reset_peak() {
    PEAK_BYTES.store(CURRENT_BYTES.load(Ordering::Relaxed), Ordering::Relaxed);
}

/// Zeroes every counter (totals and per-slot) and re-arms the peak at
/// the current live level. The slot table's interned paths are kept so
/// slot ids cached in thread-locals stay valid.
pub fn reset() {
    TOTAL_ALLOC_COUNT.store(0, Ordering::Relaxed);
    TOTAL_ALLOC_BYTES.store(0, Ordering::Relaxed);
    TOTAL_DEALLOC_COUNT.store(0, Ordering::Relaxed);
    TOTAL_DEALLOC_BYTES.store(0, Ordering::Relaxed);
    reset_peak();
    for stat in &SLOT_STATS {
        stat.alloc_count.store(0, Ordering::Relaxed);
        stat.alloc_bytes.store(0, Ordering::Relaxed);
        stat.dealloc_count.store(0, Ordering::Relaxed);
        stat.dealloc_bytes.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // The allocator itself is exercised end-to-end in
    // `tests/alloc_profile.rs` (a dedicated binary that installs
    // `ProfiledAllocator`); here we cover the slot table and snapshot
    // plumbing, which work without the installed allocator.

    #[test]
    fn slot_paths_intern_and_walk_back() {
        let a = slot_for(ROOT_SLOT, "alloc.unit.outer");
        let b = slot_for(a, "alloc.unit.inner");
        assert_eq!(slot_for(ROOT_SLOT, "alloc.unit.outer"), a, "interned");
        assert_ne!(a, b);
        let snap = snapshot();
        assert_eq!(
            snap.slot_path(b),
            vec!["alloc.unit.outer".to_string(), "alloc.unit.inner".to_string()]
        );
        assert_eq!(snap.slot_path(ROOT_SLOT), Vec::<String>::new());
        assert_eq!(snap.slot_path(OVERFLOW_SLOT), vec!["(overflow)".to_string()]);
    }

    #[test]
    fn enter_restore_scope_round_trips() {
        let before = current_slot();
        let prev = enter_scope("alloc.unit.scope");
        assert_eq!(prev, before);
        assert_ne!(current_slot(), before);
        restore_scope(prev);
        assert_eq!(current_slot(), before);
    }

    #[test]
    fn disabled_gate_reports_disabled() {
        // The gate is global state; other tests in this crate never
        // enable it, so `snapshot()` must agree with the flag.
        if !is_enabled() {
            assert!(!snapshot().enabled);
        }
    }
}
