//! RAII timing spans with same-thread nesting.
//!
//! [`SpanGuard::enter`] (usually via the [`crate::span!`] macro) starts
//! the clock and pushes the span onto a thread-local stack; the guard's
//! `Drop` pops the stack and folds the elapsed time into the global
//! registry, recording the enclosing span (if any) as parent.
//!
//! Every live span also carries a process-unique id. When the event
//! timeline is enabled (see [`crate::timeline`]), entering and dropping
//! a guard records individual Begin/End events carrying that id and the
//! parent's — this is what the Chrome trace exporter replays.
//!
//! The stack is per thread, so nesting is tracked within a thread only:
//! a span opened inside a rayon worker closure sees whatever is active
//! *on that worker*, not the span that spawned the parallel region.
//! Aggregation is global either way — any thread may open any span name
//! concurrently, and the per-name totals fold under the registry lock.

use std::cell::RefCell;
use std::time::Instant;

use crate::timeline::{self, EventKind};

#[derive(Debug)]
struct StackEntry {
    name: String,
    span_id: u64,
}

thread_local! {
    static SPAN_STACK: RefCell<Vec<StackEntry>> = const { RefCell::new(Vec::new()) };
}

/// An open span. Created by [`SpanGuard::enter`] / [`crate::span!`];
/// records its elapsed wall time when dropped.
///
/// When telemetry is disabled at entry the guard is inert: no clock
/// read, no stack push, nothing recorded on drop.
#[derive(Debug)]
pub struct SpanGuard {
    /// `None` when telemetry was disabled at entry.
    live: Option<LiveSpan>,
}

#[derive(Debug)]
struct LiveSpan {
    name: String,
    span_id: u64,
    parent: Option<String>,
    parent_id: Option<u64>,
    /// Allocation slot to restore on drop, when the allocation gate
    /// was on at entry (see [`crate::alloc`]).
    prev_alloc_slot: Option<u32>,
    start: Instant,
}

impl SpanGuard {
    /// Opens a span named `name`, started now.
    ///
    /// Entering a span also feeds the watchdog heartbeat when one is
    /// armed (see [`crate::watchdog`]) — independent of whether
    /// telemetry is enabled, so supervised runs prove liveness even
    /// with metrics collection off.
    pub fn enter(name: &str) -> SpanGuard {
        crate::watchdog::beat_if_armed();
        if !crate::enabled() {
            return SpanGuard { live: None };
        }
        let span_id = timeline::next_span_id();
        let (parent, parent_id) = SPAN_STACK.with(|s| {
            let mut stack = s.borrow_mut();
            let parent = stack.last().map(|e| (e.name.clone(), e.span_id));
            stack.push(StackEntry {
                name: name.to_string(),
                span_id,
            });
            match parent {
                Some((name, id)) => (Some(name), Some(id)),
                None => (None, None),
            }
        });
        timeline::global_timeline().record(EventKind::Begin, name, span_id, parent_id);
        // With the allocation gate on, this span becomes the innermost
        // attribution scope until it drops.
        let prev_alloc_slot = if crate::alloc::is_enabled() {
            Some(crate::alloc::enter_scope(name))
        } else {
            None
        };
        SpanGuard {
            live: Some(LiveSpan {
                name: name.to_string(),
                span_id,
                parent,
                parent_id,
                prev_alloc_slot,
                start: Instant::now(),
            }),
        }
    }

    /// The span name, if the guard is live.
    pub fn name(&self) -> Option<&str> {
        self.live.as_ref().map(|l| l.name.as_str())
    }

    /// The process-unique span id, if the guard is live.
    pub fn span_id(&self) -> Option<u64> {
        self.live.as_ref().map(|l| l.span_id)
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(live) = self.live.take() else {
            return;
        };
        let elapsed_ns = live.start.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64;
        if let Some(prev) = live.prev_alloc_slot {
            crate::alloc::restore_scope(prev);
        }
        SPAN_STACK.with(|s| {
            let mut stack = s.borrow_mut();
            // Guards drop in LIFO order within a thread, so the top of
            // the stack is this span; pop defensively anyway in case a
            // guard was moved across an unwind boundary.
            if stack.last().is_some_and(|e| e.span_id == live.span_id) {
                stack.pop();
            } else if let Some(pos) = stack.iter().rposition(|e| e.span_id == live.span_id) {
                stack.remove(pos);
            }
        });
        timeline::global_timeline().record(
            EventKind::End,
            &live.name,
            live.span_id,
            live.parent_id,
        );
        // Recording is still gated inside the registry: if telemetry
        // was disabled while the span was open, nothing is written.
        crate::global().record_span(&live.name, live.parent.as_deref(), elapsed_ns);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // Global-registry span behaviour (nesting, parents) is covered by
    // `crate::tests::global_api_end_to_end`; here we only pin the
    // disabled-guard contract, which must hold no matter what other
    // tests do to the global enabled flag concurrently.

    #[test]
    fn stack_is_balanced_after_guard_drop() {
        // Holds whether or not telemetry is enabled: a live guard pops
        // what it pushed, an inert guard pushes nothing.
        {
            let _g = SpanGuard::enter("span.test.balance");
        }
        let depth = SPAN_STACK.with(|s| s.borrow().len());
        assert_eq!(depth, 0, "guard must pop exactly what it pushed");
    }
}
