//! # hpcpower-obs
//!
//! Observability substrate for the HPC power suite, built from scratch
//! (the workspace is offline, so no `tracing`/`metrics` dependency):
//!
//! - **Spans** — [`span!`] opens an RAII guard that times a region of
//!   code and folds `(count, total, min, max)` plus a log-bucketed
//!   duration histogram per span name into the global registry on drop.
//!   Spans nest (a thread-local stack records the parent) and aggregate
//!   safely across rayon workers: any thread may open any span at any
//!   time.
//! - **Metrics registry** — monotonic [counters](Registry::counter_add),
//!   [gauges](Registry::gauge_set), and log-bucketed quantile
//!   [histograms](Registry::histogram_record) (HDR-style, ~2
//!   significant digits; see [`Histogram`] for the documented
//!   relative-error bound) whose exact moment statistics ride on the
//!   [`hpcpower_stats`] Welford [`Summary`] accumulator.
//! - **Timeline** — an opt-in bounded, lock-sharded ring buffer of
//!   individual span begin/end events ([`timeline`]), exportable as
//!   Chrome trace-event JSON ([`export::chrome_trace`]) for Perfetto /
//!   `chrome://tracing`.
//! - **Sinks** — a [`Snapshot`] of the registry renders as a
//!   human-readable text table, as JSON-lines (one metric per line), as
//!   a single JSON document for `--metrics-out` files, or as Prometheus
//!   text exposition v0.0.4 ([`export::prometheus`]); the format is
//!   selected at runtime ([`LogFormat`], [`MetricsFormat`]).
//!
//! ## Overhead contract
//!
//! Telemetry is **off by default** and off-cheap: every entry point
//! checks one relaxed atomic load and returns immediately when
//! disabled — no locks, no allocation, no clock reads (asserted by the
//! timing-ratio test in `tests/overhead.rs`). The timeline has a second
//! gate on top: span events are only recorded when an exporter asked
//! for them via [`enable_timeline`]. When enabled, instrumentation only
//! *observes* (clock reads, counter folds); it never participates in
//! pipeline computation, so report and dataset bytes are identical with
//! observability on or off, at any thread count.
//! `crates/sim/tests/determinism.rs` and
//! `crates/core/tests/report_determinism.rs` prove the contract.
//!
//! ## Usage
//!
//! ```
//! hpcpower_obs::enable();
//! {
//!     let _span = hpcpower_obs::span!("demo.stage");
//!     hpcpower_obs::counter_add("demo.items", 3);
//! }
//! let snap = hpcpower_obs::snapshot();
//! assert_eq!(snap.counter("demo.items"), Some(3));
//! assert!(snap.span("demo.stage").is_some());
//! hpcpower_obs::disable();
//! ```

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod alerts;
pub mod alloc;
pub mod export;
pub mod profile;
pub mod registry;
pub mod retry;
pub mod sampler;
pub mod serve;
pub mod sink;
pub mod snapshot;
pub mod span;
pub mod store;
pub mod timeline;
pub mod watchdog;

use std::sync::OnceLock;
use std::time::Instant;

use hpcpower_stats::Summary;

pub use alerts::{AlertEngine, AlertKind, AlertOp, AlertRule, AlertState};
pub use alloc::{AllocSnapshot, ProfiledAllocator, SlotSnapshot};
pub use profile::{
    render_profile, FlatEntry, FlatProfile, ProfileFormat, ProfileGraph, ProfileNode,
};
pub use registry::{Histogram, Registry, SUBBUCKETS_PER_OCTAVE};
pub use retry::{http_get_retry, is_transient, retry_io, RetryPolicy};
pub use sampler::Sampler;
pub use serve::{MetricsServer, ServeOptions, ServeState};
pub use sink::{render, render_metrics, LogFormat, MetricsFormat};
pub use snapshot::{BuildInfo, HistogramSnapshot, Snapshot, SpanStats};
pub use span::SpanGuard;
pub use store::{SamplePoint, WindowSnapshot, WindowStore};
pub use timeline::{Timeline, TimelineEvent, TimelineSnapshot};

static GLOBAL: OnceLock<Registry> = OnceLock::new();

/// The process-wide registry every instrumentation point reports to.
pub fn global() -> &'static Registry {
    GLOBAL.get_or_init(Registry::new)
}

/// Whether telemetry collection is currently enabled (default: off).
#[inline]
pub fn enabled() -> bool {
    global().is_enabled()
}

/// Turns telemetry collection on. Also pins the process-uptime epoch
/// (see [`uptime_seconds`]) if this is the first call.
pub fn enable() {
    process_epoch();
    global().set_enabled(true);
}

/// Turns telemetry collection off. Metrics recorded so far are kept
/// until [`reset`].
pub fn disable() {
    global().set_enabled(false);
}

/// Whether span begin/end events are being recorded into the global
/// timeline (default: off; requires [`enable`] too to take effect,
/// since inert guards record nothing).
#[inline]
pub fn timeline_enabled() -> bool {
    timeline::global_timeline().is_enabled()
}

/// Turns timeline event recording on (see [`timeline`] for ring sizing
/// and drop semantics). Call [`enable`] as well: the timeline only sees
/// spans that are live in the first place.
pub fn enable_timeline() {
    timeline::global_timeline().set_enabled(true);
}

/// Turns timeline event recording off. Events recorded so far are kept
/// until [`reset`].
pub fn disable_timeline() {
    timeline::global_timeline().set_enabled(false);
}

/// Takes a sorted copy of the global timeline's events plus the
/// ring-wrap drop count.
pub fn timeline_snapshot() -> TimelineSnapshot {
    timeline::global_timeline().snapshot()
}

/// Whether the periodic sampler's window store accepts samples
/// (default: off).
#[inline]
pub fn sampling_enabled() -> bool {
    store::global_store().is_enabled()
}

/// Turns sliding-window sampling on (see [`store`] for ring sizing
/// and drop semantics). Call [`enable`] as well: the sampler snapshots
/// the registry, which records nothing while disabled.
pub fn enable_sampling() {
    store::global_store().set_enabled(true);
}

/// Turns sliding-window sampling off. Samples recorded so far are
/// kept until [`reset`].
pub fn disable_sampling() {
    store::global_store().set_enabled(false);
}

/// Whether the installed [`ProfiledAllocator`] is attributing
/// allocation traffic (default: off). Without a `#[global_allocator]`
/// install the gate is inert either way.
#[inline]
pub fn alloc_profiling_enabled() -> bool {
    alloc::is_enabled()
}

/// Turns allocation profiling on (see [`alloc`] for the attribution
/// model). Only has an observable effect in binaries that installed
/// [`ProfiledAllocator`] as the `#[global_allocator]`.
pub fn enable_alloc_profiling() {
    alloc::set_enabled(true);
}

/// Turns allocation profiling off. Stats recorded so far are kept
/// until [`reset`].
pub fn disable_alloc_profiling() {
    alloc::set_enabled(false);
}

/// Takes a consistent copy of the allocation-profiling totals and
/// per-call-path slot stats.
pub fn alloc_snapshot() -> AllocSnapshot {
    alloc::snapshot()
}

/// Ingests one registry snapshot into the global window store right
/// now (what a sampler tick does). No-op when sampling is disabled —
/// the disabled cost is one relaxed atomic load.
pub fn sample_now() {
    if !store::global_store().is_enabled() {
        return;
    }
    ingest_sample(&snapshot());
}

/// Ingests an already-taken snapshot into the global window store at
/// the current monotonic timestamp. No-op when sampling is disabled.
pub fn ingest_sample(snap: &Snapshot) {
    let store = store::global_store();
    if !store.is_enabled() {
        return;
    }
    store.ingest(snap, timeline::now_ns());
}

/// Takes a frozen copy of the global window store's series.
pub fn window_snapshot() -> WindowSnapshot {
    store::global_store().snapshot()
}

/// Records the identity baked into the running binary; shows up as
/// the `hpcpower_build_info` info-gauge in the Prometheus exposition,
/// a `build_info` section in the JSON document, and Chrome trace
/// metadata. First caller wins; later calls are ignored.
pub fn set_build_info(git_sha: &str, version: &str) {
    let _ = BUILD_INFO.set(BuildInfo {
        git_sha: git_sha.to_string(),
        version: version.to_string(),
    });
}

/// The build identity recorded by [`set_build_info`], if any.
pub fn build_info() -> Option<&'static BuildInfo> {
    BUILD_INFO.get()
}

static BUILD_INFO: OnceLock<BuildInfo> = OnceLock::new();

static PROCESS_EPOCH: OnceLock<Instant> = OnceLock::new();

fn process_epoch() -> Instant {
    *PROCESS_EPOCH.get_or_init(Instant::now)
}

/// Seconds since telemetry was first enabled (or since the first
/// uptime query, whichever came first) — the
/// `obs.process.uptime_seconds` gauge.
pub fn uptime_seconds() -> f64 {
    process_epoch().elapsed().as_secs_f64()
}

/// Clears every counter, gauge, histogram, and span aggregate, the
/// recorded timeline events, the window store's series, and the
/// allocation-profiling stats.
pub fn reset() {
    global().reset();
    timeline::global_timeline().reset();
    store::global_store().reset();
    alloc::reset();
}

/// Takes a deterministic (name-sorted) snapshot of the registry.
///
/// On top of the raw registry contents, an enabled registry's
/// snapshot carries the `obs.process.uptime_seconds` gauge and — when
/// [`set_build_info`] was called — the build identity.
pub fn snapshot() -> Snapshot {
    let mut snap = global().snapshot();
    if global().is_enabled() {
        snap.set_gauge("obs.process.uptime_seconds", uptime_seconds());
        if alloc::is_enabled() {
            let a = alloc::snapshot();
            snap.set_counter("obs.alloc.allocations", a.alloc_count);
            snap.set_counter("obs.alloc.allocated_bytes", a.alloc_bytes);
            snap.set_counter("obs.alloc.deallocations", a.dealloc_count);
            snap.set_counter("obs.alloc.freed_bytes", a.dealloc_bytes);
            snap.set_gauge("obs.alloc.current_bytes", a.current_bytes as f64);
            snap.set_gauge("obs.alloc.peak_bytes", a.peak_bytes as f64);
        }
    }
    snap.build_info = build_info().cloned();
    snap
}

/// Adds `delta` to the monotonic counter `name` (no-op when disabled).
#[inline]
pub fn counter_add(name: &str, delta: u64) {
    global().counter_add(name, delta);
}

/// Sets the gauge `name` to `value` (no-op when disabled).
#[inline]
pub fn gauge_set(name: &str, value: f64) {
    global().gauge_set(name, value);
}

/// Records `value` into the log-bucketed histogram `name` (no-op when
/// disabled).
#[inline]
pub fn histogram_record(name: &str, value: f64) {
    global().histogram_record(name, value);
}

/// Records many values into the histogram `name` under one lock
/// (no-op when disabled; the iterator is not consumed in that case).
#[inline]
pub fn histogram_record_many(name: &str, values: impl IntoIterator<Item = f64>) {
    global().histogram_record_many(name, values);
}

/// Runs `f` inside a span named `name` and returns its result.
///
/// Equivalent to opening [`span!`] for the duration of the closure;
/// when telemetry is disabled the only cost is the inert guard.
#[inline]
pub fn time<R>(name: &str, f: impl FnOnce() -> R) -> R {
    let _guard = SpanGuard::enter(name);
    f()
}

/// Opens an RAII span guard: `let _span = hpcpower_obs::span!("stage");`.
///
/// The region from the macro to the end of the guard's scope is timed
/// and aggregated under the given name. Spans opened while another span
/// is active *on the same thread* record it as their parent.
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::span::SpanGuard::enter($name)
    };
}

/// Builds a [`Summary`] over the values of an iterator — convenience
/// for instrumentation sites that want moment statistics of a derived
/// quantity without collecting it.
pub fn summarize(values: impl IntoIterator<Item = f64>) -> Summary {
    let mut s = Summary::new();
    for v in values {
        s.push(v);
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The global-API surface is covered by one test because the
    /// registry is process-wide state shared with any concurrently
    /// running test; instance-level behaviour is tested per module.
    #[test]
    fn global_api_end_to_end() {
        enable();
        counter_add("test.global.counter", 2);
        counter_add("test.global.counter", 3);
        gauge_set("test.global.gauge", 1.5);
        histogram_record("test.global.hist", 0.25);
        {
            let _outer = span!("test.global.outer");
            let _inner = span!("test.global.inner");
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        let snap = snapshot();
        assert_eq!(snap.counter("test.global.counter"), Some(5));
        assert_eq!(snap.gauge("test.global.gauge"), Some(1.5));
        assert_eq!(snap.histogram("test.global.hist").unwrap().p50, 0.25);
        let inner = snap.span("test.global.inner").expect("inner span recorded");
        assert!(inner.total_ns > 0);
        assert_eq!(inner.parent.as_deref(), Some("test.global.outer"));
        assert!(snap.span("test.global.outer").unwrap().total_ns >= inner.total_ns);
        assert!(inner.p99_ns >= inner.p50_ns, "quantiles are ordered");
        disable();
    }

    #[test]
    fn time_returns_closure_result() {
        // Must hold regardless of the global enabled state.
        assert_eq!(time("test.time.noop", || 41 + 1), 42);
    }
}
