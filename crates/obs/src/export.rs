//! Standard-format exporters: Chrome trace-event JSON and Prometheus
//! text exposition (v0.0.4), both written from scratch (the workspace
//! is offline).
//!
//! - [`chrome_trace`] renders a [`TimelineSnapshot`] as a trace-event
//!   JSON document loadable in Perfetto / `chrome://tracing`: one "B"
//!   (begin) and one "E" (end) phase event per completed span, with
//!   `pid`/`tid`/microsecond timestamps and the span/parent ids in
//!   `args`. Ring wrap-around can orphan one half of a pair; the
//!   exporter drops unmatched events (viewers reject unbalanced B/E)
//!   and reports both `events_dropped` and `events_unmatched` in the
//!   document metadata — truncation is never silent.
//! - [`prometheus`] renders a registry [`Snapshot`] in the exposition
//!   format: counters as `_total` counters, gauges as gauges,
//!   log-bucketed histograms as `le`-bucketed cumulative histograms
//!   with `_sum`/`_count`, and span aggregates as summaries with
//!   `quantile` labels.
//! - [`lint_prometheus`] is a small from-scratch exposition-format
//!   checker (metric-name charset, `le` monotonicity, `_count`/`_sum`
//!   consistency) used by the exporter tests and the tier-1 smoke.

use std::collections::HashMap;
use std::fmt::Write as _;

use crate::snapshot::{escape_json, Snapshot};
use crate::timeline::{EventKind, TimelineSnapshot};

/// Renders a timeline snapshot as Chrome trace-event JSON.
///
/// Events are emitted in `(ts, seq)` order. Every emitted "B" has a
/// matching "E" on the same `tid`: events whose partner was lost to
/// ring wrap-around are skipped and counted in
/// `metadata.events_unmatched`.
pub fn chrome_trace(snap: &TimelineSnapshot) -> String {
    // Pair up B/E events per tid. Span guards are strictly LIFO within
    // a thread, so in a complete timeline every End matches the top of
    // its thread's stack; any mismatch means the partner was dropped.
    let mut keep = vec![false; snap.events.len()];
    let mut stacks: HashMap<u64, Vec<(usize, u64)>> = HashMap::new();
    for (i, ev) in snap.events.iter().enumerate() {
        let stack = stacks.entry(ev.tid).or_default();
        match ev.kind {
            EventKind::Begin => stack.push((i, ev.span_id)),
            EventKind::End => {
                if stack.last().is_some_and(|&(_, id)| id == ev.span_id) {
                    let (begin_idx, _) = stack.pop().expect("checked non-empty");
                    keep[begin_idx] = true;
                    keep[i] = true;
                } else if let Some(pos) =
                    stack.iter().rposition(|&(_, id)| id == ev.span_id)
                {
                    // A guard moved across threads closed out of LIFO
                    // order; everything it skips over stays unmatched
                    // only if its own End never arrives.
                    let (begin_idx, _) = stack.remove(pos);
                    keep[begin_idx] = true;
                    keep[i] = true;
                }
                // An End with no Begin on record: its Begin was
                // overwritten by the ring — skip it.
            }
        }
    }
    let kept = keep.iter().filter(|&&k| k).count();
    let unmatched = snap.events.len() - kept;

    let mut out = String::from("{\n\"traceEvents\": [\n");
    let mut first = true;
    for (ev, _) in snap.events.iter().zip(&keep).filter(|(_, &k)| k) {
        if !first {
            out.push_str(",\n");
        }
        first = false;
        let ph = match ev.kind {
            EventKind::Begin => "B",
            EventKind::End => "E",
        };
        let _ = write!(
            out,
            "{{\"name\":\"{}\",\"cat\":\"hpcpower\",\"ph\":\"{ph}\",\"pid\":1,\
             \"tid\":{},\"ts\":{:.3}",
            escape_json(&ev.name),
            ev.tid,
            ev.ts_ns as f64 / 1e3,
        );
        let _ = write!(out, ",\"args\":{{\"span_id\":{}", ev.span_id);
        if let Some(p) = ev.parent_id {
            let _ = write!(out, ",\"parent_id\":{p}");
        }
        out.push_str("}}");
    }
    let build = match crate::build_info() {
        Some(bi) => format!(
            ",\"git_sha\": \"{}\",\"version\": \"{}\"",
            escape_json(&bi.git_sha),
            escape_json(&bi.version)
        ),
        None => String::new(),
    };
    let _ = write!(
        out,
        "\n],\n\"displayTimeUnit\": \"ms\",\n\"metadata\": {{\
         \"events_recorded\": {},\"events_dropped\": {},\"events_unmatched\": {unmatched}{build}}}\n}}\n",
        snap.events.len(),
        snap.dropped,
    );
    out
}

/// Maps a dotted metric name onto the Prometheus charset
/// (`[a-zA-Z_:][a-zA-Z0-9_:]*`).
pub fn sanitize_metric_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len());
    for (i, c) in name.chars().enumerate() {
        let ok = c.is_ascii_alphabetic() || c == '_' || c == ':' || (i > 0 && c.is_ascii_digit());
        if ok {
            out.push(c);
        } else if i == 0 && c.is_ascii_digit() {
            out.push('_');
            out.push(c);
        } else {
            out.push('_');
        }
    }
    if out.is_empty() {
        out.push('_');
    }
    out
}

/// Formats an f64 for a Prometheus sample value (`+Inf`/`-Inf`/`NaN`
/// spellings per the exposition format).
fn prom_f64(v: f64) -> String {
    if v.is_nan() {
        "NaN".to_string()
    } else if v == f64::INFINITY {
        "+Inf".to_string()
    } else if v == f64::NEG_INFINITY {
        "-Inf".to_string()
    } else {
        format!("{v}")
    }
}

/// Escapes HELP text per the exposition format: `\` and line feeds
/// must be backslash-escaped.
fn escape_help(s: &str) -> String {
    s.replace('\\', "\\\\").replace('\n', "\\n")
}

/// Escapes a label value per the exposition format: `\`, `"`, and
/// line feeds must be backslash-escaped (one more case than HELP
/// text, since label values are double-quoted).
pub fn escape_label_value(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"").replace('\n', "\\n")
}

/// Renders a registry snapshot in the Prometheus text exposition
/// format v0.0.4.
pub fn prometheus(snap: &Snapshot) -> String {
    let mut out = String::new();
    if let Some(bi) = &snap.build_info {
        let _ = writeln!(out, "# HELP hpcpower_build_info Build identity of the emitting binary");
        let _ = writeln!(out, "# TYPE hpcpower_build_info gauge");
        let _ = writeln!(
            out,
            "hpcpower_build_info{{git_sha=\"{}\",version=\"{}\"}} 1",
            escape_label_value(&bi.git_sha),
            escape_label_value(&bi.version)
        );
    }
    for (name, v) in &snap.counters {
        let pname = format!("{}_total", sanitize_metric_name(name));
        let _ = writeln!(out, "# HELP {pname} Monotonic counter {}", escape_help(name));
        let _ = writeln!(out, "# TYPE {pname} counter");
        let _ = writeln!(out, "{pname} {v}");
    }
    for (name, v) in &snap.gauges {
        let pname = sanitize_metric_name(name);
        let _ = writeln!(out, "# HELP {pname} Gauge {}", escape_help(name));
        let _ = writeln!(out, "# TYPE {pname} gauge");
        let _ = writeln!(out, "{pname} {}", prom_f64(*v));
    }
    for (name, h) in &snap.histograms {
        let pname = sanitize_metric_name(name);
        let _ = writeln!(
            out,
            "# HELP {pname} Log-bucketed histogram {}",
            escape_help(name)
        );
        let _ = writeln!(out, "# TYPE {pname} histogram");
        let mut cum = 0u64;
        for (bound, count) in &h.buckets {
            cum += count;
            let _ = writeln!(out, "{pname}_bucket{{le=\"{}\"}} {cum}", prom_f64(*bound));
        }
        let _ = writeln!(out, "{pname}_bucket{{le=\"+Inf\"}} {}", h.count);
        let _ = writeln!(out, "{pname}_sum {}", prom_f64(h.sum));
        let _ = writeln!(out, "{pname}_count {}", h.count);
    }
    for (name, s) in &snap.spans {
        let pname = format!("{}_seconds", sanitize_metric_name(name));
        let _ = writeln!(out, "# HELP {pname} Span duration {}", escape_help(name));
        let _ = writeln!(out, "# TYPE {pname} summary");
        for (q, v_ns) in [(0.5, s.p50_ns), (0.9, s.p90_ns), (0.99, s.p99_ns)] {
            let _ = writeln!(
                out,
                "{pname}{{quantile=\"{q}\"}} {}",
                prom_f64(v_ns / 1e9)
            );
        }
        let _ = writeln!(out, "{pname}_sum {}", prom_f64(s.total_secs()));
        let _ = writeln!(out, "{pname}_count {}", s.count);
    }
    out
}

fn valid_metric_name(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

fn valid_label_name(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_')
}

#[derive(Debug)]
struct PromSample {
    name: String,
    labels: Vec<(String, String)>,
    value: f64,
    line: usize,
}

impl PromSample {
    fn label(&self, key: &str) -> Option<&str> {
        self.labels
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }
}

fn parse_prom_value(s: &str) -> Option<f64> {
    match s {
        "+Inf" | "Inf" => Some(f64::INFINITY),
        "-Inf" => Some(f64::NEG_INFINITY),
        "NaN" => Some(f64::NAN),
        _ => s.parse().ok(),
    }
}

fn parse_sample(line: &str, lineno: usize) -> Result<PromSample, String> {
    let err = |msg: &str| format!("line {lineno}: {msg}: {line:?}");
    let (name, labels_str, value_str) = match line.find('{') {
        Some(brace) => {
            let close = line.rfind('}').ok_or_else(|| err("unterminated label set"))?;
            if close < brace {
                return Err(err("mismatched braces"));
            }
            (
                &line[..brace],
                Some(&line[brace + 1..close]),
                &line[close + 1..],
            )
        }
        None => {
            let sp = line.find(' ').ok_or_else(|| err("sample has no value"))?;
            (&line[..sp], None, &line[sp..])
        }
    };
    if !valid_metric_name(name) {
        return Err(err("invalid metric name"));
    }
    let mut labels = Vec::new();
    if let Some(ls) = labels_str {
        let mut s = ls;
        while !s.is_empty() {
            let eq = s.find('=').ok_or_else(|| err("label without '='"))?;
            let key = s[..eq].trim();
            if !valid_label_name(key) {
                return Err(err("invalid label name"));
            }
            let after = &s[eq + 1..];
            if !after.starts_with('"') {
                return Err(err("label value not quoted"));
            }
            // Find the closing unescaped quote.
            let mut end = None;
            let bytes = after.as_bytes();
            let mut i = 1;
            while i < bytes.len() {
                match bytes[i] {
                    b'\\' => i += 2,
                    b'"' => {
                        end = Some(i);
                        break;
                    }
                    _ => i += 1,
                }
            }
            let end = end.ok_or_else(|| err("unterminated label value"))?;
            labels.push((key.to_string(), after[1..end].to_string()));
            s = after[end + 1..].trim_start_matches(',').trim_start();
        }
    }
    let value_str = value_str.trim();
    // A timestamp may follow the value; take the first token.
    let value_tok = value_str.split_whitespace().next().unwrap_or("");
    let value = parse_prom_value(value_tok).ok_or_else(|| err("unparseable sample value"))?;
    Ok(PromSample {
        name: name.to_string(),
        labels,
        value,
        line: lineno,
    })
}

/// Checks a Prometheus text exposition document: metric-name and
/// label-name charsets, `# TYPE` validity, `le` bucket monotonicity,
/// and `_count`/`_sum` consistency for histograms and summaries.
pub fn lint_prometheus(text: &str) -> Result<(), String> {
    let mut types: Vec<(String, String)> = Vec::new();
    let mut samples: Vec<PromSample> = Vec::new();
    for (idx, line) in text.lines().enumerate() {
        let lineno = idx + 1;
        if line.trim().is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix('#') {
            let rest = rest.trim_start();
            if let Some(decl) = rest.strip_prefix("TYPE ") {
                let mut it = decl.split_whitespace();
                let name = it
                    .next()
                    .ok_or_else(|| format!("line {lineno}: TYPE without metric name"))?;
                let ty = it
                    .next()
                    .ok_or_else(|| format!("line {lineno}: TYPE without a type"))?;
                if !valid_metric_name(name) {
                    return Err(format!("line {lineno}: invalid metric name {name:?}"));
                }
                if !["counter", "gauge", "histogram", "summary", "untyped"].contains(&ty) {
                    return Err(format!("line {lineno}: unknown type {ty:?}"));
                }
                if types.iter().any(|(n, _)| n == name) {
                    return Err(format!("line {lineno}: duplicate TYPE for {name:?}"));
                }
                types.push((name.to_string(), ty.to_string()));
            } else if let Some(decl) = rest.strip_prefix("HELP ") {
                let name = decl.split_whitespace().next().unwrap_or("");
                if !valid_metric_name(name) {
                    return Err(format!("line {lineno}: invalid metric name {name:?}"));
                }
            }
            // Other '#' lines are free-form comments.
            continue;
        }
        samples.push(parse_sample(line, lineno)?);
    }

    for (name, ty) in &types {
        match ty.as_str() {
            "counter" => {
                let base: Vec<_> = samples.iter().filter(|s| &s.name == name).collect();
                if base.is_empty() {
                    return Err(format!("counter {name:?} has no samples"));
                }
                for s in base {
                    if s.value < 0.0 {
                        return Err(format!("line {}: counter {name:?} is negative", s.line));
                    }
                }
            }
            "histogram" => lint_histogram(name, &samples)?,
            "summary" => lint_summary(name, &samples)?,
            _ => {}
        }
    }
    Ok(())
}

fn find_single_value(samples: &[PromSample], name: &str) -> Result<f64, String> {
    let matches: Vec<_> = samples.iter().filter(|s| s.name == name).collect();
    match matches.as_slice() {
        [one] => Ok(one.value),
        [] => Err(format!("missing sample {name:?}")),
        _ => Err(format!("duplicate sample {name:?}")),
    }
}

fn lint_histogram(name: &str, samples: &[PromSample]) -> Result<(), String> {
    let bucket_name = format!("{name}_bucket");
    let buckets: Vec<_> = samples.iter().filter(|s| s.name == bucket_name).collect();
    if buckets.is_empty() {
        return Err(format!("histogram {name:?} has no {bucket_name:?} samples"));
    }
    let mut prev_le = f64::NEG_INFINITY;
    let mut prev_cum = 0.0f64;
    for b in &buckets {
        let le_str = b
            .label("le")
            .ok_or_else(|| format!("line {}: bucket without le label", b.line))?;
        let le = parse_prom_value(le_str)
            .filter(|v| !v.is_nan())
            .ok_or_else(|| format!("line {}: unparseable le {le_str:?}", b.line))?;
        if le <= prev_le {
            return Err(format!(
                "line {}: le buckets not strictly increasing ({le} after {prev_le})",
                b.line
            ));
        }
        if b.value < prev_cum {
            return Err(format!(
                "line {}: cumulative bucket count decreased ({} after {prev_cum})",
                b.line, b.value
            ));
        }
        prev_le = le;
        prev_cum = b.value;
    }
    if prev_le != f64::INFINITY {
        return Err(format!("histogram {name:?} last bucket le is not +Inf"));
    }
    let count = find_single_value(samples, &format!("{name}_count"))?;
    find_single_value(samples, &format!("{name}_sum"))?;
    if count != prev_cum {
        return Err(format!(
            "histogram {name:?}: _count {count} != +Inf bucket {prev_cum}"
        ));
    }
    Ok(())
}

fn lint_summary(name: &str, samples: &[PromSample]) -> Result<(), String> {
    for s in samples.iter().filter(|s| s.name == name) {
        let q_str = s
            .label("quantile")
            .ok_or_else(|| format!("line {}: summary sample without quantile", s.line))?;
        let q: f64 = q_str
            .parse()
            .map_err(|_| format!("line {}: unparseable quantile {q_str:?}", s.line))?;
        if !(0.0..=1.0).contains(&q) {
            return Err(format!("line {}: quantile {q} outside [0, 1]", s.line));
        }
    }
    find_single_value(samples, &format!("{name}_count"))?;
    find_single_value(samples, &format!("{name}_sum"))?;
    Ok(())
}
