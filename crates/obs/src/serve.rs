//! From-scratch HTTP/1.1 telemetry endpoint on `std::net::TcpListener`
//! (the workspace is offline — no hyper/axum, so the request parser
//! and response writer are hand-rolled).
//!
//! ## Routes
//!
//! | Route       | Body                                                    |
//! |-------------|---------------------------------------------------------|
//! | `/metrics`  | Prometheus text exposition v0.0.4 of the snapshot       |
//! | `/snapshot` | The single-document JSON metrics form                   |
//! | `/healthz`  | JSON: uptime, sample/drop/quarantine counters, alerts   |
//! | `/alerts`   | JSON state of the attached alert engine                 |
//! | `/quit`     | Acknowledges and asks the owning process to shut down   |
//!
//! Anything else is 404; non-GET methods are 405; a malformed request
//! line is 400. Responses always carry `Content-Length` and
//! `Connection: close` — one request per connection keeps the parser
//! trivial and is plenty for scrape traffic.
//!
//! ## Bounds and graceful degradation
//!
//! Connections are handled on short-lived threads, capped at
//! [`ServeOptions::max_connections`] in flight, with read/write
//! timeouts so a stalled peer cannot pin a handler. Request heads are
//! capped at 8 KiB.
//!
//! Under load the server sheds expensive routes first and keeps the
//! control plane alive (each shed answers `503` with `Retry-After`
//! and bumps the `obs.serve.shed` counter):
//!
//! 1. above half of `max_connections`: `/snapshot` is shed (the
//!    full-JSON dump is the most expensive route);
//! 2. above three quarters: `/metrics` and `/alerts` are shed too;
//! 3. at the cap, new connections are handled *inline* on the accept
//!    thread with a short read deadline: `/healthz` is shed last and
//!    `/quit` is always honored — an operator can always shut the
//!    server down, no matter how overloaded it is.
//!
//! The server only ever *reads* telemetry state; like the sampler it
//! never participates in pipeline computation, so serving cannot
//! change dataset or report bytes.

use std::io::{Read as _, Write as _};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use crate::alerts::AlertEngine;
use crate::export::prometheus;
use crate::sampler::SnapshotFn;
use crate::store;

/// Maximum accepted request head (request line + headers), bytes.
const MAX_REQUEST_BYTES: usize = 8 * 1024;

/// Tunables of a [`MetricsServer`].
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// Maximum connections being handled at once; excess connections
    /// receive `503 Service Unavailable` immediately.
    pub max_connections: usize,
    /// Per-connection read and write timeout.
    pub io_timeout: Duration,
}

impl Default for ServeOptions {
    fn default() -> Self {
        Self {
            max_connections: 16,
            io_timeout: Duration::from_secs(5),
        }
    }
}

/// What the server serves: a snapshot source plus an optional alert
/// engine for `/alerts`.
#[derive(Clone)]
pub struct ServeState {
    /// Source of registry snapshots (live registry or a loaded file).
    pub snapshot_fn: SnapshotFn,
    /// Alert engine rendered by `/alerts` and summarized in
    /// `/healthz`, if any.
    pub engine: Option<Arc<Mutex<AlertEngine>>>,
}

impl ServeState {
    /// State serving the global registry with no alert engine.
    pub fn global() -> Self {
        Self {
            snapshot_fn: Arc::new(crate::snapshot),
            engine: None,
        }
    }
}

impl std::fmt::Debug for ServeState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServeState")
            .field("engine", &self.engine.is_some())
            .finish()
    }
}

/// A running telemetry HTTP server; stops (and joins) on drop.
#[derive(Debug)]
pub struct MetricsServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    quit_requested: Arc<AtomicBool>,
    accept_handle: Option<JoinHandle<()>>,
}

impl MetricsServer {
    /// Binds `addr` (e.g. `127.0.0.1:0` for an ephemeral port) and
    /// starts the accept loop in a background thread.
    pub fn start(
        addr: impl ToSocketAddrs,
        state: ServeState,
        options: ServeOptions,
    ) -> std::io::Result<MetricsServer> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let quit_requested = Arc::new(AtomicBool::new(false));
        let inflight = Arc::new(AtomicUsize::new(0));
        let accept_stop = Arc::clone(&stop);
        let accept_quit = Arc::clone(&quit_requested);
        let accept_handle = std::thread::Builder::new()
            .name("obs-serve".to_string())
            .spawn(move || {
                for conn in listener.incoming() {
                    if accept_stop.load(Ordering::Relaxed) {
                        break;
                    }
                    let Ok(stream) = conn else { continue };
                    if inflight.load(Ordering::Relaxed) >= options.max_connections {
                        // Fully saturated: no handler thread available,
                        // but /quit must never be dropped. Read the head
                        // inline with a short deadline and answer only
                        // the control plane; everything else is shed.
                        handle_overloaded(stream, &accept_quit);
                        continue;
                    }
                    inflight.fetch_add(1, Ordering::Relaxed);
                    let conn_inflight = Arc::clone(&inflight);
                    let state = state.clone();
                    let quit = Arc::clone(&accept_quit);
                    let options = options.clone();
                    let spawned = std::thread::Builder::new()
                        .name("obs-serve-conn".to_string())
                        .spawn(move || {
                            handle_connection(stream, &state, &quit, &options, &conn_inflight);
                            conn_inflight.fetch_sub(1, Ordering::Relaxed);
                        });
                    if spawned.is_err() {
                        inflight.fetch_sub(1, Ordering::Relaxed);
                    }
                }
            })
            .expect("spawn obs-serve thread");
        Ok(MetricsServer {
            addr,
            stop,
            quit_requested,
            accept_handle: Some(accept_handle),
        })
    }

    /// The actually-bound address (resolves port 0 to the real port).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Whether a client asked the owning process to shut down via
    /// `GET /quit`.
    pub fn quit_requested(&self) -> bool {
        self.quit_requested.load(Ordering::Relaxed)
    }

    /// Blocks until `GET /quit` arrives or `max_wait` (if any)
    /// elapses. Returns whether quit was requested.
    pub fn wait_for_quit(&self, max_wait: Option<Duration>) -> bool {
        let deadline = max_wait.map(|d| std::time::Instant::now() + d);
        while !self.quit_requested() {
            if deadline.is_some_and(|d| std::time::Instant::now() >= d) {
                break;
            }
            std::thread::sleep(Duration::from_millis(20));
        }
        self.quit_requested()
    }

    /// Stops accepting, unblocks the accept loop, and joins it.
    /// Idempotent; in-flight handler threads finish on their own.
    pub fn stop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        // Unblock the blocking accept with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(handle) = self.accept_handle.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for MetricsServer {
    fn drop(&mut self) {
        self.stop();
    }
}

/// Deadline for reading a request head on the accept thread when the
/// server is saturated. Short, so a slow peer cannot stall accepts for
/// long; a peer that misses it is shed without an answer.
const OVERLOAD_READ_TIMEOUT: Duration = Duration::from_millis(250);

/// Inline handler for connections arriving while every handler slot is
/// busy: serve `/quit` (never dropped), shed everything else with 503.
fn handle_overloaded(mut stream: TcpStream, quit: &AtomicBool) {
    let _ = stream.set_read_timeout(Some(OVERLOAD_READ_TIMEOUT));
    let _ = stream.set_write_timeout(Some(OVERLOAD_READ_TIMEOUT));
    let path = read_request_head(&mut stream)
        .as_deref()
        .and_then(request_path)
        .map(str::to_string);
    let response = match path.as_deref() {
        Some("/quit") => {
            quit.store(true, Ordering::Relaxed);
            crate::counter_add("obs.serve.requests", 1);
            Response::ok("text/plain; charset=utf-8", "shutting down\n".to_string())
        }
        _ => shed_response(),
    };
    write_response(&mut stream, &response);
}

/// The 503 a shed route answers with; carries `Retry-After` so a
/// well-behaved scraper backs off instead of hammering.
fn shed_response() -> Response {
    crate::counter_add("obs.serve.shed", 1);
    Response::error(503, "Service Unavailable", "overloaded, retry later")
}

/// Routes shed at each load level, cheapest-to-keep last: `/snapshot`
/// above half the connection cap, `/metrics` and `/alerts` above three
/// quarters. `/healthz` is only shed on the saturated inline path and
/// `/quit` never.
fn shed_route(path: &str, inflight: usize, max_connections: usize) -> bool {
    match path {
        "/snapshot" => inflight > max_connections / 2,
        "/metrics" | "/alerts" => inflight > (max_connections * 3) / 4,
        _ => false,
    }
}

/// Extracts the request path from a request head: GET only, HTTP/1.x
/// only, query string stripped. `None` means malformed (or non-GET),
/// which the caller maps to 400/405.
fn request_path(head: &str) -> Option<&str> {
    let request_line = head.lines().next().unwrap_or("");
    let mut parts = request_line.split_whitespace();
    let (method, target, version) = (parts.next()?, parts.next()?, parts.next()?);
    if method != "GET" || !version.starts_with("HTTP/1.") || parts.next().is_some() {
        return None;
    }
    Some(target.split('?').next().unwrap_or(target))
}

/// Reads the request head (up to the blank line or the size cap).
fn read_request_head(stream: &mut TcpStream) -> Option<String> {
    let mut buf = Vec::with_capacity(512);
    let mut chunk = [0u8; 512];
    loop {
        match stream.read(&mut chunk) {
            Ok(0) => break,
            Ok(n) => {
                buf.extend_from_slice(&chunk[..n]);
                if buf.windows(4).any(|w| w == b"\r\n\r\n") || buf.len() > MAX_REQUEST_BYTES {
                    break;
                }
            }
            Err(_) => return None,
        }
    }
    if buf.is_empty() || buf.len() > MAX_REQUEST_BYTES {
        return None;
    }
    String::from_utf8(buf).ok()
}

struct Response {
    status: u16,
    reason: &'static str,
    content_type: &'static str,
    body: String,
}

impl Response {
    fn ok(content_type: &'static str, body: String) -> Self {
        Self {
            status: 200,
            reason: "OK",
            content_type,
            body,
        }
    }

    fn error(status: u16, reason: &'static str, body: &str) -> Self {
        Self {
            status,
            reason,
            content_type: "text/plain; charset=utf-8",
            body: format!("{body}\n"),
        }
    }
}

fn route(path: &str, state: &ServeState, quit: &AtomicBool) -> Response {
    match path {
        "/metrics" => Response::ok(
            "text/plain; version=0.0.4; charset=utf-8",
            prometheus(&(state.snapshot_fn)()),
        ),
        "/snapshot" => Response::ok("application/json", (state.snapshot_fn)().to_json()),
        "/healthz" => Response::ok("application/json", healthz_body(state)),
        "/alerts" => {
            let body = match &state.engine {
                Some(engine) => engine
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner)
                    .to_json(),
                None => "{\n  \"firing\": 0,\n  \"pending\": 0,\n  \"evals\": 0,\n  \"rules\": [\n  ]\n}\n"
                    .to_string(),
            };
            Response::ok("application/json", body)
        }
        "/quit" => {
            quit.store(true, Ordering::Relaxed);
            Response::ok("text/plain; charset=utf-8", "shutting down\n".to_string())
        }
        _ => Response::error(404, "Not Found", "not found"),
    }
}

fn handle_connection(
    mut stream: TcpStream,
    state: &ServeState,
    quit: &AtomicBool,
    options: &ServeOptions,
    inflight: &AtomicUsize,
) {
    let _ = stream.set_read_timeout(Some(options.io_timeout));
    let _ = stream.set_write_timeout(Some(options.io_timeout));
    let Some(head) = read_request_head(&mut stream) else {
        return;
    };
    let request_line = head.lines().next().unwrap_or("");
    let mut parts = request_line.split_whitespace();
    let (method, target, version) = (parts.next(), parts.next(), parts.next());
    let response = match (method, target, version) {
        (Some(method), Some(target), Some(version))
            if version.starts_with("HTTP/1.") && parts.next().is_none() =>
        {
            if method != "GET" {
                Response::error(405, "Method Not Allowed", "only GET is supported")
            } else {
                // Strip any query string; the endpoints take none.
                let path = target.split('?').next().unwrap_or(target);
                crate::counter_add("obs.serve.requests", 1);
                // Graceful degradation: shed expensive routes while
                // most handler slots are busy (see the module docs for
                // the shed order). /quit and /healthz are never shed
                // here — only the saturated inline path sheds /healthz.
                if shed_route(path, inflight.load(Ordering::Relaxed), options.max_connections)
                {
                    shed_response()
                } else {
                    route(path, state, quit)
                }
            }
        }
        _ => Response::error(400, "Bad Request", "malformed request line"),
    };
    write_response(&mut stream, &response);
}

fn write_response(stream: &mut TcpStream, response: &Response) {
    let mut head = format!(
        "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: close\r\n",
        response.status,
        response.reason,
        response.content_type,
        response.body.len()
    );
    if response.status == 405 {
        head.push_str("Allow: GET\r\n");
    }
    if response.status == 503 {
        head.push_str("Retry-After: 1\r\n");
    }
    head.push_str("\r\n");
    let _ = stream.write_all(head.as_bytes());
    let _ = stream.write_all(response.body.as_bytes());
    let _ = stream.flush();
}

fn healthz_body(state: &ServeState) -> String {
    let snap = (state.snapshot_fn)();
    let store = store::global_store();
    let quarantined = snap.counter("repair.rows_quarantined").unwrap_or(0)
        + snap.counter("trace.ingest.rows_quarantined").unwrap_or(0);
    let (firing, pending) = match &state.engine {
        Some(engine) => engine
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .status_counts(),
        None => (0, 0),
    };
    let alloc = crate::alloc::snapshot();
    format!(
        "{{\n  \"status\": \"ok\",\n  \"uptime_seconds\": {},\n  \"samples\": {},\n  \
         \"window_dropped\": {},\n  \"timeline_dropped\": {},\n  \"rows_quarantined\": {quarantined},\n  \
         \"alerts_firing\": {firing},\n  \"alerts_pending\": {pending},\n  \
         \"profiling\": {{\"timeline\": {}, \"alloc\": {}, \"alloc_peak_bytes\": {}}}\n}}\n",
        crate::snapshot::json_f64(crate::uptime_seconds()),
        store.samples(),
        store.dropped(),
        crate::timeline_snapshot().dropped,
        crate::timeline_enabled(),
        alloc.enabled,
        alloc.peak_bytes,
    )
}

/// Minimal HTTP/1.1 GET client for tests and smoke checks: returns
/// `(status, headers, body)`.
pub fn http_get(addr: SocketAddr, path: &str) -> std::io::Result<(u16, String, String)> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(10)))?;
    stream.set_write_timeout(Some(Duration::from_secs(10)))?;
    write!(stream, "GET {path} HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\r\n")?;
    let mut raw = String::new();
    stream.read_to_string(&mut raw)?;
    let (head, body) = raw.split_once("\r\n\r\n").unwrap_or((raw.as_str(), ""));
    let status = head
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| {
            std::io::Error::new(std::io::ErrorKind::InvalidData, "malformed status line")
        })?;
    Ok((status, head.to_string(), body.to_string()))
}
