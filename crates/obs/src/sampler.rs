//! The periodic sampler: a background thread that snapshots metrics
//! into the sliding-window store at a fixed interval.
//!
//! Each tick takes one snapshot via the configured snapshot function,
//! ingests it into the global [`crate::WindowStore`], bumps the
//! `obs.sampler.ticks` counter, and — when an alert engine is attached
//! — runs one evaluation pass so rules advance exactly once per
//! sample. The first tick happens immediately on start, so even a
//! short-lived command leaves at least one sample behind.
//!
//! The sampler is an *observer*: it never writes anything the pipeline
//! reads, so dataset and report bytes are identical with it running or
//! not (proved in `crates/sim/tests/determinism.rs` and
//! `crates/core/tests/report_determinism.rs`). Stopping is prompt: the
//! thread waits on a condvar with the interval as timeout, so
//! [`Sampler::stop`] (or drop) returns without sleeping out the
//! remaining interval.

use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use crate::alerts::AlertEngine;
use crate::snapshot::Snapshot;
use crate::store;

/// Shared `Snapshot` source: the live registry for real services, a
/// parsed metrics document for `obs serve --metrics FILE`.
pub type SnapshotFn = Arc<dyn Fn() -> Snapshot + Send + Sync>;

#[derive(Default)]
struct StopSignal {
    stopped: Mutex<bool>,
    cv: Condvar,
}

/// Handle to a running background sampler thread; stops on drop.
pub struct Sampler {
    signal: Arc<StopSignal>,
    handle: Option<JoinHandle<()>>,
}

impl Sampler {
    /// Starts a sampler ticking every `interval` over `snapshot_fn`,
    /// optionally evaluating `engine` once per tick.
    pub fn start(
        interval: Duration,
        snapshot_fn: SnapshotFn,
        engine: Option<Arc<Mutex<AlertEngine>>>,
    ) -> Sampler {
        let signal = Arc::new(StopSignal::default());
        let thread_signal = Arc::clone(&signal);
        let handle = std::thread::Builder::new()
            .name("obs-sampler".to_string())
            .spawn(move || loop {
                let snap = snapshot_fn();
                crate::ingest_sample(&snap);
                crate::counter_add("obs.sampler.ticks", 1);
                if let Some(engine) = &engine {
                    let mut engine = engine
                        .lock()
                        .unwrap_or_else(std::sync::PoisonError::into_inner);
                    engine.evaluate(store::global_store(), Some(crate::global()));
                }
                let stopped = thread_signal
                    .stopped
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
                let (stopped, _) = thread_signal
                    .cv
                    .wait_timeout_while(stopped, interval, |s| !*s)
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
                if *stopped {
                    break;
                }
            })
            .expect("spawn obs-sampler thread");
        Sampler {
            signal,
            handle: Some(handle),
        }
    }

    /// Starts a sampler over the global registry snapshot.
    pub fn start_global(
        interval: Duration,
        engine: Option<Arc<Mutex<AlertEngine>>>,
    ) -> Sampler {
        Sampler::start(interval, Arc::new(crate::snapshot), engine)
    }

    /// Signals the thread to stop and joins it. Idempotent.
    pub fn stop(&mut self) {
        {
            let mut stopped = self
                .signal
                .stopped
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            *stopped = true;
        }
        self.signal.cv.notify_all();
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for Sampler {
    fn drop(&mut self) {
        self.stop();
    }
}

impl std::fmt::Debug for Sampler {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Sampler")
            .field("running", &self.handle.is_some())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Global-store sampling is exercised end-to-end in
    /// `tests/live_service.rs` (the store is process-wide state); here
    /// we only check the thread lifecycle with a custom snapshot fn.
    #[test]
    fn sampler_ticks_and_stops_promptly() {
        use std::sync::atomic::{AtomicU64, Ordering};
        let calls = Arc::new(AtomicU64::new(0));
        let calls_in = Arc::clone(&calls);
        let mut sampler = Sampler::start(
            Duration::from_millis(5),
            Arc::new(move || {
                calls_in.fetch_add(1, Ordering::Relaxed);
                Snapshot::default()
            }),
            None,
        );
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while calls.load(Ordering::Relaxed) < 3 && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(2));
        }
        assert!(calls.load(Ordering::Relaxed) >= 3, "sampler ticked");
        let before_stop = std::time::Instant::now();
        sampler.stop();
        assert!(
            before_stop.elapsed() < Duration::from_secs(2),
            "stop joins promptly"
        );
        let after = calls.load(Ordering::Relaxed);
        std::thread::sleep(Duration::from_millis(20));
        assert_eq!(calls.load(Ordering::Relaxed), after, "no ticks after stop");
        sampler.stop(); // idempotent
    }
}
