//! The metrics registry: counters, gauges, histograms, span aggregates.
//!
//! One [`Registry`] instance holds all telemetry of a process (the
//! global one lives behind [`crate::global`]). Every mutating entry
//! point first checks the `enabled` flag with a relaxed atomic load and
//! returns immediately when telemetry is off, so a disabled registry
//! costs one predictable branch per call site.
//!
//! Metrics are keyed by dotted names (`"sim.monitor.samples"`). Maps
//! are `BTreeMap`s so snapshots iterate in a deterministic order.
//!
//! Histograms are **log-bucketed quantile histograms** (HDR-style):
//! see [`Histogram`] for the bucket layout and the documented
//! relative-error bound on the quantile estimates. Span aggregates
//! carry one such histogram of their observed durations, so snapshots
//! can answer "what is p99 render latency?" and not just "what was the
//! total".

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, MutexGuard};

use hpcpower_stats::Summary;

use crate::snapshot::{HistogramSnapshot, Snapshot, SpanStats};

/// Sub-buckets per power of two in [`Histogram`]'s log-bucketed
/// layout. 128 sub-buckets give adjacent bucket bounds a ratio of
/// 2^(1/128) ≈ 1.0054 — roughly two significant decimal digits.
pub const SUBBUCKETS_PER_OCTAVE: u32 = 128;

/// A log-bucketed quantile histogram with Welford moment statistics.
///
/// Positive values land in sparse buckets indexed by
/// `floor(log2(v) * 128)`: bucket `i` covers `[2^(i/128), 2^((i+1)/128))`,
/// so adjacent bucket bounds differ by a factor of 2^(1/128) ≈ 0.54%.
/// Values ≤ 0 are counted in a dedicated zero bucket (telemetry values
/// are durations and counts, so this is the empty/degenerate case, not
/// a precision loss). NaNs are ignored.
///
/// ## Quantile error bound
///
/// [`Histogram::quantile`] returns the geometric midpoint of the bucket
/// containing the nearest-rank sample, clamped to the exact observed
/// `[min, max]`. For positive samples the estimate therefore differs
/// from the exact nearest-rank sample quantile by a relative factor of
/// at most **2^(1/256) − 1 ≈ 0.28%**, independent of the data's range
/// or shape. The attached [`Summary`] provides exact
/// mean/min/max/std-dev regardless of bucket resolution.
#[derive(Debug, Clone, Default)]
pub struct Histogram {
    /// Sparse bucket counts keyed by `floor(log2(v) * 128)`.
    buckets: BTreeMap<i32, u64>,
    /// Count of values ≤ 0.
    zero_count: u64,
    /// Exact running sum of every recorded value.
    sum: f64,
    summary: Summary,
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sparse bucket index of a positive value.
    fn index(value: f64) -> i32 {
        (value.log2() * SUBBUCKETS_PER_OCTAVE as f64).floor() as i32
    }

    /// Exclusive upper bound of bucket `i`.
    pub fn bucket_upper_bound(i: i32) -> f64 {
        ((i + 1) as f64 / SUBBUCKETS_PER_OCTAVE as f64).exp2()
    }

    /// Geometric midpoint of bucket `i` — the representative value the
    /// quantile estimator returns for samples in this bucket.
    fn representative(i: i32) -> f64 {
        ((i as f64 + 0.5) / SUBBUCKETS_PER_OCTAVE as f64).exp2()
    }

    /// Records one value (NaNs are ignored).
    pub fn record(&mut self, value: f64) {
        if value.is_nan() {
            return;
        }
        if value > 0.0 {
            *self.buckets.entry(Self::index(value)).or_insert(0) += 1;
        } else {
            self.zero_count += 1;
        }
        self.sum += value;
        self.summary.push(value);
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.summary.count()
    }

    /// Exact sum of recorded values.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Estimated quantile `q in [0, 1]` (nearest-rank; see the type
    /// docs for the relative-error bound). Returns 0 for an empty
    /// histogram.
    pub fn quantile(&self, q: f64) -> f64 {
        let n = self.count();
        if n == 0 {
            return 0.0;
        }
        let clamp = |v: f64| v.clamp(self.summary.min(), self.summary.max());
        // The extreme quantiles are tracked exactly by the Welford
        // summary, so don't pay the bucket rounding error for them.
        if q <= 0.0 {
            return self.summary.min();
        }
        if q >= 1.0 {
            return self.summary.max();
        }
        let rank = ((q * n as f64).ceil() as u64).max(1);
        let mut cum = self.zero_count;
        if rank <= cum {
            return clamp(0.0);
        }
        for (&i, &c) in &self.buckets {
            cum += c;
            if rank <= cum {
                return clamp(Self::representative(i));
            }
        }
        self.summary.max()
    }

    /// `(upper_bound, count)` per non-empty bucket in bound order; the
    /// zero bucket (values ≤ 0) reports bound 0.
    pub fn buckets(&self) -> Vec<(f64, u64)> {
        let mut out = Vec::with_capacity(self.buckets.len() + 1);
        if self.zero_count > 0 {
            out.push((0.0, self.zero_count));
        }
        out.extend(
            self.buckets
                .iter()
                .map(|(&i, &c)| (Self::bucket_upper_bound(i), c)),
        );
        out
    }

    /// The exact moment statistics of everything recorded.
    pub fn summary(&self) -> &Summary {
        &self.summary
    }

    pub(crate) fn to_snapshot(&self) -> HistogramSnapshot {
        let empty = self.summary.is_empty();
        HistogramSnapshot {
            count: self.summary.count(),
            sum: self.sum,
            mean: if empty { 0.0 } else { self.summary.mean() },
            min: if empty { 0.0 } else { self.summary.min() },
            max: if empty { 0.0 } else { self.summary.max() },
            p50: self.quantile(0.50),
            p90: self.quantile(0.90),
            p99: self.quantile(0.99),
            buckets: self.buckets(),
        }
    }
}

#[derive(Debug, Default)]
struct SpanAgg {
    count: u64,
    total_ns: u64,
    min_ns: u64,
    max_ns: u64,
    /// Wall time spent inside child spans — folded in by the children
    /// as they complete, so `total_ns − child_ns` is self time.
    child_ns: u64,
    parent: Option<String>,
    /// Distribution of observed durations (nanoseconds).
    durations: Histogram,
}

/// A telemetry registry: all counters, gauges, histograms, and span
/// aggregates of one scope (usually the whole process).
#[derive(Debug)]
pub struct Registry {
    enabled: AtomicBool,
    counters: Mutex<BTreeMap<String, u64>>,
    gauges: Mutex<BTreeMap<String, f64>>,
    histograms: Mutex<BTreeMap<String, Histogram>>,
    spans: Mutex<BTreeMap<String, SpanAgg>>,
}

impl Default for Registry {
    fn default() -> Self {
        Self::new()
    }
}

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    // Telemetry must never take the process down: a panic while a lock
    // was held leaves valid (if partially updated) aggregates behind.
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

impl Registry {
    /// Creates a registry with collection disabled.
    pub fn new() -> Self {
        Self {
            enabled: AtomicBool::new(false),
            counters: Mutex::new(BTreeMap::new()),
            gauges: Mutex::new(BTreeMap::new()),
            histograms: Mutex::new(BTreeMap::new()),
            spans: Mutex::new(BTreeMap::new()),
        }
    }

    /// Whether collection is enabled.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Enables or disables collection.
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Relaxed);
    }

    /// Adds `delta` to the monotonic counter `name`.
    pub fn counter_add(&self, name: &str, delta: u64) {
        if !self.is_enabled() {
            return;
        }
        let mut counters = lock(&self.counters);
        match counters.get_mut(name) {
            Some(v) => *v += delta,
            None => {
                counters.insert(name.to_string(), delta);
            }
        }
    }

    /// Sets the gauge `name` to `value` (last write wins).
    pub fn gauge_set(&self, name: &str, value: f64) {
        if !self.is_enabled() {
            return;
        }
        lock(&self.gauges).insert(name.to_string(), value);
    }

    /// Records `value` into the log-bucketed histogram `name`.
    pub fn histogram_record(&self, name: &str, value: f64) {
        if !self.is_enabled() {
            return;
        }
        let mut hists = lock(&self.histograms);
        hists.entry(name.to_string()).or_default().record(value);
    }

    /// Records many values into histogram `name` under one lock.
    pub fn histogram_record_many(&self, name: &str, values: impl IntoIterator<Item = f64>) {
        if !self.is_enabled() {
            return;
        }
        let mut hists = lock(&self.histograms);
        let h = hists.entry(name.to_string()).or_default();
        for v in values {
            h.record(v);
        }
    }

    /// Folds one completed span observation into the per-name
    /// aggregate. Called by [`crate::span::SpanGuard`] on drop; public
    /// so alternative span sources (and tests) can feed a registry
    /// directly.
    pub fn record_span(&self, name: &str, parent: Option<&str>, nanos: u64) {
        if !self.is_enabled() {
            return;
        }
        let mut spans = lock(&self.spans);
        let agg = spans.entry(name.to_string()).or_default();
        if agg.count == 0 {
            agg.min_ns = nanos;
            agg.max_ns = nanos;
            // The parent observed first wins; span trees in this
            // codebase are static, so first == always in practice.
            agg.parent = parent.map(str::to_string);
        } else {
            agg.min_ns = agg.min_ns.min(nanos);
            agg.max_ns = agg.max_ns.max(nanos);
        }
        agg.count += 1;
        agg.total_ns += nanos;
        agg.durations.record(nanos as f64);
        // Credit this duration to the parent's child time so the
        // parent's self time excludes it. The parent entry may not
        // exist yet (children complete first); `or_default` is safe
        // because the `count == 0` branch above still initializes
        // min/max/parent when the parent's own first observation lands.
        if let Some(parent) = parent {
            spans.entry(parent.to_string()).or_default().child_ns += nanos;
        }
    }

    /// Clears every metric (the enabled flag is left as is).
    pub fn reset(&self) {
        lock(&self.counters).clear();
        lock(&self.gauges).clear();
        lock(&self.histograms).clear();
        lock(&self.spans).clear();
    }

    /// Takes a deterministic, name-sorted snapshot of every metric.
    pub fn snapshot(&self) -> Snapshot {
        Snapshot {
            build_info: None,
            counters: lock(&self.counters)
                .iter()
                .map(|(k, v)| (k.clone(), *v))
                .collect(),
            gauges: lock(&self.gauges)
                .iter()
                .map(|(k, v)| (k.clone(), *v))
                .collect(),
            histograms: lock(&self.histograms)
                .iter()
                .map(|(k, h)| (k.clone(), h.to_snapshot()))
                .collect(),
            spans: lock(&self.spans)
                .iter()
                // An entry with no completed observation exists only to
                // hold child time for a still-open parent; it has no
                // min/max/quantiles to report yet.
                .filter(|(_, a)| a.count > 0)
                .map(|(k, a)| {
                    (
                        k.clone(),
                        SpanStats {
                            count: a.count,
                            total_ns: a.total_ns,
                            self_ns: a.total_ns.saturating_sub(a.child_ns),
                            min_ns: a.min_ns,
                            max_ns: a.max_ns,
                            p50_ns: a.durations.quantile(0.50),
                            p90_ns: a.durations.quantile(0.90),
                            p99_ns: a.durations.quantile(0.99),
                            parent: a.parent.clone(),
                        },
                    )
                })
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_registry_records_nothing() {
        let r = Registry::new();
        r.counter_add("c", 1);
        r.gauge_set("g", 2.0);
        r.histogram_record("h", 3.0);
        r.record_span("s", None, 100);
        let snap = r.snapshot();
        assert!(snap.counters.is_empty());
        assert!(snap.gauges.is_empty());
        assert!(snap.histograms.is_empty());
        assert!(snap.spans.is_empty());
    }

    #[test]
    fn counters_accumulate_and_gauges_overwrite() {
        let r = Registry::new();
        r.set_enabled(true);
        r.counter_add("jobs", 10);
        r.counter_add("jobs", 5);
        r.gauge_set("depth", 3.0);
        r.gauge_set("depth", 7.0);
        let snap = r.snapshot();
        assert_eq!(snap.counter("jobs"), Some(15));
        assert_eq!(snap.gauge("depth"), Some(7.0));
    }

    #[test]
    fn histogram_buckets_and_moments() {
        let mut h = Histogram::new();
        for v in [0.5, 2.0, 3.0, 50.0, 1e6] {
            h.record(v);
        }
        assert_eq!(h.count(), 5);
        assert!((h.sum() - 1_000_055.5).abs() < 1e-6);
        assert!((h.summary().min() - 0.5).abs() < 1e-12);
        assert!((h.summary().max() - 1e6).abs() < 1e-12);
        let buckets = h.buckets();
        assert_eq!(buckets.len(), 5, "five distinct values, five buckets");
        assert!(buckets.windows(2).all(|w| w[0].0 < w[1].0));
        assert_eq!(buckets.iter().map(|(_, c)| c).sum::<u64>(), 5);
    }

    #[test]
    fn histogram_quantiles_within_documented_bound() {
        let mut h = Histogram::new();
        let values: Vec<f64> = (1..=1000).map(|i| i as f64).collect();
        for &v in &values {
            h.record(v);
        }
        // Nearest-rank exact quantiles of 1..=1000.
        for (q, exact) in [(0.50, 500.0), (0.90, 900.0), (0.99, 990.0)] {
            let est = h.quantile(q);
            let rel = (est - exact).abs() / exact;
            assert!(
                rel <= 0.003,
                "q={q}: est {est} vs exact {exact} (rel err {rel:.5})"
            );
        }
        assert_eq!(h.quantile(0.0), 1.0, "p0 clamps to exact min");
        assert_eq!(h.quantile(1.0), 1000.0, "p100 clamps to exact max");
    }

    #[test]
    fn histogram_zero_bucket_and_nan() {
        let mut h = Histogram::new();
        h.record(0.0);
        h.record(-3.0);
        h.record(f64::NAN);
        h.record(5.0);
        assert_eq!(h.count(), 3, "NaN is ignored");
        assert_eq!(h.buckets()[0], (0.0, 2), "zero bucket counts v <= 0");
        // Rank 1 and 2 are in the zero bucket: representative 0 clamped
        // into [min, max] = [-3, 5].
        assert_eq!(h.quantile(0.4), 0.0);
    }

    #[test]
    fn histogram_single_value_is_exact() {
        let mut h = Histogram::new();
        h.record(4.0);
        for q in [0.0, 0.5, 0.99, 1.0] {
            assert_eq!(h.quantile(q), 4.0, "clamping makes single value exact");
        }
    }

    #[test]
    fn span_aggregation_folds_min_max_total_and_quantiles() {
        let r = Registry::new();
        r.set_enabled(true);
        r.record_span("stage", None, 10);
        r.record_span("stage", None, 30);
        r.record_span("stage", None, 20);
        let snap = r.snapshot();
        let s = snap.span("stage").unwrap();
        assert_eq!(s.count, 3);
        assert_eq!(s.total_ns, 60);
        assert_eq!(s.min_ns, 10);
        assert_eq!(s.max_ns, 30);
        // p50 of {10, 20, 30} is the rank-2 sample (20) within 0.3%.
        assert!((s.p50_ns - 20.0).abs() / 20.0 <= 0.003, "p50 {}", s.p50_ns);
        assert!((s.p99_ns - 30.0).abs() / 30.0 <= 0.003, "p99 {}", s.p99_ns);
    }

    #[test]
    fn span_aggregation_is_thread_safe() {
        let r = std::sync::Arc::new(Registry::new());
        r.set_enabled(true);
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let r = r.clone();
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        r.record_span("worker", None, 1);
                        r.counter_add("ticks", 1);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let snap = r.snapshot();
        assert_eq!(snap.span("worker").unwrap().count, 8000);
        assert_eq!(snap.span("worker").unwrap().total_ns, 8000);
        assert_eq!(snap.counter("ticks"), Some(8000));
    }

    #[test]
    fn reset_clears_all_metrics() {
        let r = Registry::new();
        r.set_enabled(true);
        r.counter_add("c", 1);
        r.record_span("s", None, 5);
        r.reset();
        let snap = r.snapshot();
        assert!(snap.counters.is_empty());
        assert!(snap.spans.is_empty());
        assert!(r.is_enabled(), "reset must not flip the enabled flag");
    }
}
