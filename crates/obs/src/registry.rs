//! The metrics registry: counters, gauges, histograms, span aggregates.
//!
//! One [`Registry`] instance holds all telemetry of a process (the
//! global one lives behind [`crate::global`]). Every mutating entry
//! point first checks the `enabled` flag with a relaxed atomic load and
//! returns immediately when telemetry is off, so a disabled registry
//! costs one predictable branch per call site.
//!
//! Metrics are keyed by dotted names (`"sim.monitor.samples"`). Maps
//! are `BTreeMap`s so snapshots iterate in a deterministic order.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, MutexGuard};

use hpcpower_stats::Summary;

use crate::snapshot::{HistogramSnapshot, Snapshot, SpanStats};

/// Default histogram bucket upper bounds: half-decade exponential
/// coverage from 1e-3 to 1e6 (units are the caller's — seconds,
/// samples, jobs...). Values above the last bound land in an implicit
/// overflow bucket.
pub const DEFAULT_BUCKETS: [f64; 19] = [
    0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0, 50.0, 100.0, 500.0, 1_000.0, 5_000.0,
    10_000.0, 50_000.0, 100_000.0, 500_000.0, 1_000_000.0,
];

/// A fixed-bucket histogram with Welford moment statistics.
///
/// Bucket `i` counts values `v <= bounds[i]` (first matching bound);
/// values above every bound are counted in the overflow bucket. The
/// attached [`Summary`] provides exact mean/min/max/std-dev regardless
/// of bucket resolution.
#[derive(Debug, Clone)]
pub struct Histogram {
    bounds: Vec<f64>,
    counts: Vec<u64>,
    summary: Summary,
}

impl Histogram {
    /// Creates a histogram with the given strictly increasing upper
    /// bounds (one overflow bucket is added implicitly).
    pub fn new(bounds: &[f64]) -> Self {
        assert!(!bounds.is_empty(), "histogram needs at least one bound");
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly increasing"
        );
        Self {
            bounds: bounds.to_vec(),
            counts: vec![0; bounds.len() + 1],
            summary: Summary::new(),
        }
    }

    /// Records one value.
    pub fn record(&mut self, value: f64) {
        let idx = self
            .bounds
            .iter()
            .position(|b| value <= *b)
            .unwrap_or(self.bounds.len());
        self.counts[idx] += 1;
        self.summary.push(value);
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.summary.count()
    }

    /// The bucket upper bounds.
    pub fn bounds(&self) -> &[f64] {
        &self.bounds
    }

    /// Per-bucket counts; the last entry is the overflow bucket.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// The exact moment statistics of everything recorded.
    pub fn summary(&self) -> &Summary {
        &self.summary
    }

    pub(crate) fn to_snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            count: self.summary.count(),
            mean: if self.summary.is_empty() { 0.0 } else { self.summary.mean() },
            min: if self.summary.is_empty() { 0.0 } else { self.summary.min() },
            max: if self.summary.is_empty() { 0.0 } else { self.summary.max() },
            buckets: self
                .bounds
                .iter()
                .zip(&self.counts)
                .map(|(b, c)| (*b, *c))
                .collect(),
            overflow: *self.counts.last().expect("overflow bucket exists"),
        }
    }
}

#[derive(Debug, Default)]
struct SpanAgg {
    count: u64,
    total_ns: u64,
    min_ns: u64,
    max_ns: u64,
    parent: Option<String>,
}

/// A telemetry registry: all counters, gauges, histograms, and span
/// aggregates of one scope (usually the whole process).
#[derive(Debug)]
pub struct Registry {
    enabled: AtomicBool,
    counters: Mutex<BTreeMap<String, u64>>,
    gauges: Mutex<BTreeMap<String, f64>>,
    histograms: Mutex<BTreeMap<String, Histogram>>,
    spans: Mutex<BTreeMap<String, SpanAgg>>,
}

impl Default for Registry {
    fn default() -> Self {
        Self::new()
    }
}

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    // Telemetry must never take the process down: a panic while a lock
    // was held leaves valid (if partially updated) aggregates behind.
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

impl Registry {
    /// Creates a registry with collection disabled.
    pub fn new() -> Self {
        Self {
            enabled: AtomicBool::new(false),
            counters: Mutex::new(BTreeMap::new()),
            gauges: Mutex::new(BTreeMap::new()),
            histograms: Mutex::new(BTreeMap::new()),
            spans: Mutex::new(BTreeMap::new()),
        }
    }

    /// Whether collection is enabled.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Enables or disables collection.
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Relaxed);
    }

    /// Adds `delta` to the monotonic counter `name`.
    pub fn counter_add(&self, name: &str, delta: u64) {
        if !self.is_enabled() {
            return;
        }
        let mut counters = lock(&self.counters);
        match counters.get_mut(name) {
            Some(v) => *v += delta,
            None => {
                counters.insert(name.to_string(), delta);
            }
        }
    }

    /// Sets the gauge `name` to `value` (last write wins).
    pub fn gauge_set(&self, name: &str, value: f64) {
        if !self.is_enabled() {
            return;
        }
        lock(&self.gauges).insert(name.to_string(), value);
    }

    /// Records `value` into histogram `name` with [`DEFAULT_BUCKETS`].
    pub fn histogram_record(&self, name: &str, value: f64) {
        self.histogram_record_with(name, &DEFAULT_BUCKETS, value);
    }

    /// Records `value` into histogram `name`, creating it with the
    /// given bucket bounds if it does not exist yet (the bounds of an
    /// existing histogram are kept).
    pub fn histogram_record_with(&self, name: &str, bounds: &[f64], value: f64) {
        if !self.is_enabled() {
            return;
        }
        let mut hists = lock(&self.histograms);
        match hists.get_mut(name) {
            Some(h) => h.record(value),
            None => {
                let mut h = Histogram::new(bounds);
                h.record(value);
                hists.insert(name.to_string(), h);
            }
        }
    }

    /// Records many values into histogram `name` under one lock.
    pub fn histogram_record_many(&self, name: &str, values: impl IntoIterator<Item = f64>) {
        if !self.is_enabled() {
            return;
        }
        let mut hists = lock(&self.histograms);
        let h = hists
            .entry(name.to_string())
            .or_insert_with(|| Histogram::new(&DEFAULT_BUCKETS));
        for v in values {
            h.record(v);
        }
    }

    /// Folds one completed span observation into the per-name
    /// aggregate. Called by [`crate::span::SpanGuard`] on drop; public
    /// so alternative span sources (and tests) can feed a registry
    /// directly.
    pub fn record_span(&self, name: &str, parent: Option<&str>, nanos: u64) {
        if !self.is_enabled() {
            return;
        }
        let mut spans = lock(&self.spans);
        let agg = spans.entry(name.to_string()).or_default();
        if agg.count == 0 {
            agg.min_ns = nanos;
            agg.max_ns = nanos;
            // The parent observed first wins; span trees in this
            // codebase are static, so first == always in practice.
            agg.parent = parent.map(str::to_string);
        } else {
            agg.min_ns = agg.min_ns.min(nanos);
            agg.max_ns = agg.max_ns.max(nanos);
        }
        agg.count += 1;
        agg.total_ns += nanos;
    }

    /// Clears every metric (the enabled flag is left as is).
    pub fn reset(&self) {
        lock(&self.counters).clear();
        lock(&self.gauges).clear();
        lock(&self.histograms).clear();
        lock(&self.spans).clear();
    }

    /// Takes a deterministic, name-sorted snapshot of every metric.
    pub fn snapshot(&self) -> Snapshot {
        Snapshot {
            counters: lock(&self.counters)
                .iter()
                .map(|(k, v)| (k.clone(), *v))
                .collect(),
            gauges: lock(&self.gauges)
                .iter()
                .map(|(k, v)| (k.clone(), *v))
                .collect(),
            histograms: lock(&self.histograms)
                .iter()
                .map(|(k, h)| (k.clone(), h.to_snapshot()))
                .collect(),
            spans: lock(&self.spans)
                .iter()
                .map(|(k, a)| {
                    (
                        k.clone(),
                        SpanStats {
                            count: a.count,
                            total_ns: a.total_ns,
                            min_ns: a.min_ns,
                            max_ns: a.max_ns,
                            parent: a.parent.clone(),
                        },
                    )
                })
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_registry_records_nothing() {
        let r = Registry::new();
        r.counter_add("c", 1);
        r.gauge_set("g", 2.0);
        r.histogram_record("h", 3.0);
        r.record_span("s", None, 100);
        let snap = r.snapshot();
        assert!(snap.counters.is_empty());
        assert!(snap.gauges.is_empty());
        assert!(snap.histograms.is_empty());
        assert!(snap.spans.is_empty());
    }

    #[test]
    fn counters_accumulate_and_gauges_overwrite() {
        let r = Registry::new();
        r.set_enabled(true);
        r.counter_add("jobs", 10);
        r.counter_add("jobs", 5);
        r.gauge_set("depth", 3.0);
        r.gauge_set("depth", 7.0);
        let snap = r.snapshot();
        assert_eq!(snap.counter("jobs"), Some(15));
        assert_eq!(snap.gauge("depth"), Some(7.0));
    }

    #[test]
    fn histogram_buckets_and_moments() {
        let mut h = Histogram::new(&[1.0, 10.0, 100.0]);
        for v in [0.5, 2.0, 3.0, 50.0, 1e6] {
            h.record(v);
        }
        assert_eq!(h.counts(), &[1, 2, 1, 1]);
        assert_eq!(h.count(), 5);
        assert!((h.summary().min() - 0.5).abs() < 1e-12);
        assert!((h.summary().max() - 1e6).abs() < 1e-12);
        let snap = h.to_snapshot();
        assert_eq!(snap.overflow, 1);
        assert_eq!(snap.buckets.len(), 3);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn histogram_rejects_unsorted_bounds() {
        let _ = Histogram::new(&[1.0, 1.0]);
    }

    #[test]
    fn span_aggregation_folds_min_max_total() {
        let r = Registry::new();
        r.set_enabled(true);
        r.record_span("stage", None, 10);
        r.record_span("stage", None, 30);
        r.record_span("stage", None, 20);
        let snap = r.snapshot();
        let s = snap.span("stage").unwrap();
        assert_eq!(s.count, 3);
        assert_eq!(s.total_ns, 60);
        assert_eq!(s.min_ns, 10);
        assert_eq!(s.max_ns, 30);
    }

    #[test]
    fn span_aggregation_is_thread_safe() {
        let r = std::sync::Arc::new(Registry::new());
        r.set_enabled(true);
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let r = r.clone();
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        r.record_span("worker", None, 1);
                        r.counter_add("ticks", 1);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let snap = r.snapshot();
        assert_eq!(snap.span("worker").unwrap().count, 8000);
        assert_eq!(snap.span("worker").unwrap().total_ns, 8000);
        assert_eq!(snap.counter("ticks"), Some(8000));
    }

    #[test]
    fn reset_clears_all_metrics() {
        let r = Registry::new();
        r.set_enabled(true);
        r.counter_add("c", 1);
        r.record_span("s", None, 5);
        r.reset();
        let snap = r.snapshot();
        assert!(snap.counters.is_empty());
        assert!(snap.spans.is_empty());
        assert!(r.is_enabled(), "reset must not flip the enabled flag");
    }
}
