//! Continuous profiling: a span-tree profile graph aggregated from the
//! event timeline, with flamegraph-family exporters.
//!
//! Spans double as the logical call stack: every span name reached
//! through a distinct chain of parents is its own [`ProfileNode`], with
//! per-node call counts, inclusive (`total_ns`) and self
//! (`self_ns = total − time in children`) wall time, and — when the
//! allocation gate was on (see [`crate::alloc`]) — bytes attributed to
//! the path. Per-thread event streams replay independently and merge by
//! call path, so a stage fanned out over rayon workers folds into one
//! node.
//!
//! All three exporters are **deterministic given a fixed timeline**:
//! nodes are traversed depth-first with children in name order, so the
//! same events always produce the same bytes.
//!
//! - [`ProfileGraph::to_folded`] — collapsed-stack text
//!   (`a;b;c self_ns` per line), the lingua franca of
//!   `flamegraph.pl`-style tooling.
//! - [`ProfileGraph::to_svg`] — a self-contained flamegraph SVG
//!   (no scripts, no external assets) with hover titles.
//! - [`ProfileGraph::to_speedscope`] — speedscope JSON carrying two
//!   sampled profiles (wall nanoseconds and allocated bytes) over a
//!   shared frame table; load it at <https://speedscope.app>.
//!
//! Ring wrap-around can orphan half of a begin/end pair; orphans are
//! counted ([`ProfileGraph::orphan_begins`] / `orphan_ends`), never
//! guessed at, mirroring the Chrome trace exporter's policy.
//!
//! [`FlatProfile`] is the parse-side dual: it reads folded text or
//! speedscope JSON back into path/value rows, which is what
//! `hpcpower profile report`/`diff` operate on.

use std::collections::HashMap;
use std::fmt::Write as _;
use std::str::FromStr;

use crate::alloc::{AllocSnapshot, OVERFLOW_SLOT};
use crate::snapshot::escape_json;
use crate::timeline::{EventKind, TimelineSnapshot};

/// One node of the profile graph: a span name reached through one
/// specific chain of parent spans.
#[derive(Debug, Clone, PartialEq)]
pub struct ProfileNode {
    /// Span name (the innermost frame of this path).
    pub name: String,
    /// Index of the parent node, or `None` for a root.
    pub parent: Option<usize>,
    /// Child node indices, sorted by child name.
    pub children: Vec<usize>,
    /// Completed spans observed on this path.
    pub count: u64,
    /// Inclusive wall time: sum of the observed span durations.
    pub total_ns: u64,
    /// Self wall time: inclusive time minus time spent in child spans.
    pub self_ns: u64,
    /// Bytes allocated while this path's innermost span was active
    /// (zero unless the allocation gate was on).
    pub alloc_bytes: u64,
    /// Allocations made while this path's innermost span was active.
    pub alloc_count: u64,
}

/// A profile graph aggregated from a [`TimelineSnapshot`].
#[derive(Debug, Clone, Default)]
pub struct ProfileGraph {
    /// All nodes; indices are stable and referenced by
    /// `parent`/`children`/[`ProfileGraph::roots`].
    pub nodes: Vec<ProfileNode>,
    /// Top-level node indices (spans with no enclosing span), sorted by
    /// name.
    pub roots: Vec<usize>,
    /// Inclusive wall time summed over the roots.
    pub total_ns: u64,
    /// Distinct thread ids that contributed events.
    pub threads: u64,
    /// Events consumed from the timeline.
    pub events: u64,
    /// Begin events whose end was never observed (ring wrap or spans
    /// still open at snapshot time); they contribute no time.
    pub orphan_begins: u64,
    /// End events whose begin was lost to ring wrap-around.
    pub orphan_ends: u64,
    /// Events the timeline ring dropped before the snapshot.
    pub dropped_events: u64,
    /// Allocation traffic that could not be matched to a node: the
    /// root slot (no span active), the overflow slot, and paths whose
    /// spans were lost to ring wrap.
    pub unattributed_alloc_bytes: u64,
    /// Allocation count that could not be matched to a node.
    pub unattributed_alloc_count: u64,
}

/// A replaying thread's open frame.
struct Frame {
    span_id: u64,
    node: usize,
    begin_ts: u64,
    child_ns: u64,
}

impl ProfileGraph {
    /// Builds the profile graph by replaying a timeline snapshot.
    ///
    /// Each thread's events replay against a private stack (span guards
    /// are LIFO within a thread); completed frames fold into the node
    /// keyed by their call path, which merges identical paths across
    /// threads. Deterministic: the snapshot's `(ts, seq)` order fully
    /// decides the result.
    pub fn from_timeline(snap: &TimelineSnapshot) -> ProfileGraph {
        let mut graph = ProfileGraph {
            events: snap.events.len() as u64,
            dropped_events: snap.dropped,
            ..ProfileGraph::default()
        };
        let mut lookup: HashMap<(Option<usize>, String), usize> = HashMap::new();
        let mut stacks: HashMap<u64, Vec<Frame>> = HashMap::new();
        for ev in &snap.events {
            let stack = stacks.entry(ev.tid).or_default();
            match ev.kind {
                EventKind::Begin => {
                    let parent = stack.last().map(|f| f.node);
                    let node = match lookup.entry((parent, ev.name.clone())) {
                        std::collections::hash_map::Entry::Occupied(e) => *e.get(),
                        std::collections::hash_map::Entry::Vacant(e) => {
                            let idx = graph.nodes.len();
                            graph.nodes.push(ProfileNode {
                                name: ev.name.clone(),
                                parent,
                                children: Vec::new(),
                                count: 0,
                                total_ns: 0,
                                self_ns: 0,
                                alloc_bytes: 0,
                                alloc_count: 0,
                            });
                            match parent {
                                Some(p) => graph.nodes[p].children.push(idx),
                                None => graph.roots.push(idx),
                            }
                            e.insert(idx);
                            idx
                        }
                    };
                    stack.push(Frame {
                        span_id: ev.span_id,
                        node,
                        begin_ts: ev.ts_ns,
                        child_ns: 0,
                    });
                }
                EventKind::End => {
                    // LIFO fast path with an out-of-order fallback,
                    // mirroring `export::chrome_trace`.
                    let pos = if stack.last().is_some_and(|f| f.span_id == ev.span_id) {
                        Some(stack.len() - 1)
                    } else {
                        stack.iter().rposition(|f| f.span_id == ev.span_id)
                    };
                    let Some(pos) = pos else {
                        graph.orphan_ends += 1;
                        continue;
                    };
                    let frame = stack.remove(pos);
                    let dur = ev.ts_ns.saturating_sub(frame.begin_ts);
                    let node = &mut graph.nodes[frame.node];
                    node.count += 1;
                    node.total_ns += dur;
                    node.self_ns += dur.saturating_sub(frame.child_ns);
                    if pos > 0 {
                        stack[pos - 1].child_ns += dur;
                    }
                }
            }
        }
        graph.orphan_begins = stacks.values().map(|s| s.len() as u64).sum();
        graph.threads = stacks.len() as u64;
        // Name-sorted traversal order makes every exporter
        // deterministic.
        let names: Vec<String> = graph.nodes.iter().map(|n| n.name.clone()).collect();
        for node in &mut graph.nodes {
            node.children.sort_by(|&a, &b| names[a].cmp(&names[b]));
        }
        graph.roots.sort_by(|&a, &b| names[a].cmp(&names[b]));
        graph.total_ns = graph.roots.iter().map(|&r| graph.nodes[r].total_ns).sum();
        graph
    }

    /// Folds an allocation snapshot into the graph: each slot's call
    /// path (see [`crate::alloc`]) is resolved against the node tree
    /// and its bytes/counts land on the matching node. Root-slot
    /// traffic (no span active), overflow-slot traffic, and paths
    /// whose spans were lost to ring wrap accumulate in the
    /// `unattributed_alloc_*` counters instead — never silently
    /// dropped.
    pub fn attach_alloc(&mut self, alloc: &AllocSnapshot) {
        for (i, slot) in alloc.slots.iter().enumerate() {
            if slot.alloc_bytes == 0 && slot.alloc_count == 0 {
                continue;
            }
            let path = alloc.slot_path(i as u32);
            let resolved = if path.is_empty() || i == OVERFLOW_SLOT as usize {
                None
            } else {
                self.resolve_path(&path)
            };
            match resolved {
                Some(n) => {
                    self.nodes[n].alloc_bytes += slot.alloc_bytes;
                    self.nodes[n].alloc_count += slot.alloc_count;
                }
                None => {
                    self.unattributed_alloc_bytes += slot.alloc_bytes;
                    self.unattributed_alloc_count += slot.alloc_count;
                }
            }
        }
    }

    /// Node index reached by walking `path` names from the roots.
    fn resolve_path(&self, path: &[String]) -> Option<usize> {
        let mut cur: Option<usize> = None;
        for name in path {
            let children = match cur {
                None => &self.roots,
                Some(n) => &self.nodes[n].children,
            };
            cur = Some(
                *children
                    .iter()
                    .find(|&&c| self.nodes[c].name == *name)?,
            );
        }
        cur
    }

    /// Bytes attributed to nodes (excludes the unattributed bucket).
    pub fn attributed_alloc_bytes(&self) -> u64 {
        self.nodes.iter().map(|n| n.alloc_bytes).sum()
    }

    /// Depth-first node order (children by name), with the frame depth
    /// of each node. The traversal every exporter shares.
    fn dfs(&self) -> Vec<(usize, usize)> {
        let mut out = Vec::with_capacity(self.nodes.len());
        let mut todo: Vec<(usize, usize)> = self
            .roots
            .iter()
            .rev()
            .map(|&r| (r, 0))
            .collect();
        while let Some((n, depth)) = todo.pop() {
            out.push((n, depth));
            for &c in self.nodes[n].children.iter().rev() {
                todo.push((c, depth + 1));
            }
        }
        out
    }

    /// The names along `node`'s call path, outermost first.
    pub fn path_of(&self, node: usize) -> Vec<String> {
        let mut rev = Vec::new();
        let mut cur = Some(node);
        while let Some(n) = cur {
            rev.push(self.nodes[n].name.clone());
            cur = self.nodes[n].parent;
        }
        rev.reverse();
        rev
    }

    /// Renders collapsed-stack ("folded") text: one
    /// `frame;frame;... self_ns` line per node with nonzero self time,
    /// in depth-first name order. The value is the **self** wall time
    /// in nanoseconds, which is what flamegraph tooling expects.
    pub fn to_folded(&self) -> String {
        let mut out = String::new();
        for (n, _) in self.dfs() {
            let node = &self.nodes[n];
            if node.self_ns == 0 {
                continue;
            }
            let path: Vec<String> = self
                .path_of(n)
                .iter()
                .map(|s| sanitize_frame(s))
                .collect();
            let _ = writeln!(out, "{} {}", path.join(";"), node.self_ns);
        }
        out
    }

    /// Renders speedscope JSON (<https://speedscope.app>): a shared
    /// frame table plus two `"sampled"` profiles over it — wall
    /// nanoseconds and allocated bytes — one weighted sample per node
    /// with a nonzero self value.
    pub fn to_speedscope(&self) -> String {
        // One shared frame per distinct span name, in sorted order.
        let mut names: Vec<&str> = self.nodes.iter().map(|n| n.name.as_str()).collect();
        names.sort_unstable();
        names.dedup();
        let frame_idx: HashMap<&str, usize> =
            names.iter().enumerate().map(|(i, &n)| (n, i)).collect();

        let sample_of = |n: usize| -> String {
            let idx: Vec<String> = self
                .path_of(n)
                .iter()
                .map(|name| frame_idx[name.as_str()].to_string())
                .collect();
            format!("[{}]", idx.join(","))
        };
        let mut wall_samples = Vec::new();
        let mut wall_weights = Vec::new();
        let mut alloc_samples = Vec::new();
        let mut alloc_weights = Vec::new();
        for (n, _) in self.dfs() {
            let node = &self.nodes[n];
            if node.self_ns > 0 {
                wall_samples.push(sample_of(n));
                wall_weights.push(node.self_ns.to_string());
            }
            if node.alloc_bytes > 0 {
                alloc_samples.push(sample_of(n));
                alloc_weights.push(node.alloc_bytes.to_string());
            }
        }
        let wall_total: u64 = self.nodes.iter().map(|n| n.self_ns).sum();
        let alloc_total = self.attributed_alloc_bytes();

        let mut out = String::from(
            "{\n\"$schema\": \"https://www.speedscope.app/file-format-schema.json\",\n",
        );
        out.push_str("\"name\": \"hpcpower profile\",\n\"exporter\": \"hpcpower-obs\",\n");
        out.push_str("\"activeProfileIndex\": 0,\n\"shared\": {\"frames\": [");
        for (i, name) in names.iter().enumerate() {
            let sep = if i == 0 { "" } else { "," };
            let _ = write!(out, "{sep}\n  {{\"name\": \"{}\"}}", escape_json(name));
        }
        out.push_str("\n]},\n\"profiles\": [\n");
        for (i, (pname, unit, total, samples, weights)) in [
            ("wall time", "nanoseconds", wall_total, &wall_samples, &wall_weights),
            ("allocated bytes", "bytes", alloc_total, &alloc_samples, &alloc_weights),
        ]
        .iter()
        .enumerate()
        {
            let sep = if i == 0 { "" } else { ",\n" };
            let _ = write!(
                out,
                "{sep}  {{\"type\": \"sampled\", \"name\": \"{pname}\", \"unit\": \"{unit}\", \
                 \"startValue\": 0, \"endValue\": {total}, \"samples\": [{}], \"weights\": [{}]}}",
                samples.join(","),
                weights.join(",")
            );
        }
        out.push_str("\n]\n}\n");
        out
    }

    /// Renders a self-contained flamegraph SVG: one rectangle per node,
    /// width proportional to inclusive wall time, hover `<title>`
    /// tooltips with count/total/self/alloc detail, no scripts or
    /// external assets. Valid XML for any span-name bytes — names are
    /// escaped.
    pub fn to_svg(&self) -> String {
        const WIDTH: f64 = 1200.0;
        const MARGIN: f64 = 6.0;
        const ROW_H: f64 = 17.0;
        const HEADER_H: f64 = 26.0;
        let max_depth = self.dfs().iter().map(|&(_, d)| d).max().map_or(0, |d| d + 1);
        let height = HEADER_H + max_depth as f64 * ROW_H + MARGIN * 2.0;
        let usable = WIDTH - MARGIN * 2.0;
        let px_per_ns = if self.total_ns > 0 {
            usable / self.total_ns as f64
        } else {
            0.0
        };

        let mut out = String::new();
        let _ = writeln!(
            out,
            "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"{WIDTH}\" height=\"{height}\" \
             viewBox=\"0 0 {WIDTH} {height}\" font-family=\"monospace\" font-size=\"11\">"
        );
        let _ = writeln!(
            out,
            "<rect x=\"0\" y=\"0\" width=\"{WIDTH}\" height=\"{height}\" fill=\"#fdf6ec\"/>"
        );
        let _ = writeln!(
            out,
            "<text x=\"{MARGIN}\" y=\"17\" font-size=\"13\">hpcpower flamegraph \
             &#8212; total {} across {} node(s), {} thread(s){}</text>",
            fmt_ns(self.total_ns),
            self.nodes.len(),
            self.threads,
            if self.orphan_begins + self.orphan_ends > 0 {
                format!(
                    ", {} orphan event(s)",
                    self.orphan_begins + self.orphan_ends
                )
            } else {
                String::new()
            }
        );

        // Walk the tree assigning x offsets: children pack
        // left-to-right from their parent's left edge.
        let mut x_of: Vec<f64> = vec![0.0; self.nodes.len()];
        let mut cursor_roots = MARGIN;
        for &r in &self.roots {
            x_of[r] = cursor_roots;
            cursor_roots += self.nodes[r].total_ns as f64 * px_per_ns;
        }
        for (n, depth) in self.dfs() {
            let node = &self.nodes[n];
            let mut cursor = x_of[n];
            for &c in &node.children {
                x_of[c] = cursor;
                cursor += self.nodes[c].total_ns as f64 * px_per_ns;
            }
            let w = node.total_ns as f64 * px_per_ns;
            if w < 0.2 {
                continue;
            }
            let x = x_of[n];
            let y = HEADER_H + depth as f64 * ROW_H + MARGIN;
            let name = xml_escape(&node.name);
            let _ = writeln!(
                out,
                "<g><title>{name}: {} call(s), total {}, self {}{}</title>\
                 <rect x=\"{x:.2}\" y=\"{y:.2}\" width=\"{:.2}\" height=\"{:.2}\" \
                 fill=\"{}\" stroke=\"#fdf6ec\" stroke-width=\"0.5\"/>{}</g>",
                node.count,
                fmt_ns(node.total_ns),
                fmt_ns(node.self_ns),
                if node.alloc_bytes > 0 {
                    format!(", alloc {} in {} allocation(s)", fmt_bytes(node.alloc_bytes), node.alloc_count)
                } else {
                    String::new()
                },
                w,
                ROW_H - 1.0,
                color_for(&node.name),
                if w >= 28.0 {
                    let fit = ((w - 6.0) / 6.7) as usize;
                    let label: String = if node.name.len() > fit {
                        node.name.chars().take(fit.saturating_sub(2)).collect::<String>() + ".."
                    } else {
                        node.name.clone()
                    };
                    format!(
                        "<text x=\"{:.2}\" y=\"{:.2}\">{}</text>",
                        x + 3.0,
                        y + ROW_H - 5.0,
                        xml_escape(&label)
                    )
                } else {
                    String::new()
                }
            );
        }
        out.push_str("</svg>\n");
        out
    }

    /// Flattens the graph into path/value rows (the in-memory form of
    /// the folded export, plus alloc bytes).
    pub fn flatten(&self) -> FlatProfile {
        let entries = self
            .dfs()
            .into_iter()
            .filter_map(|(n, _)| {
                let node = &self.nodes[n];
                (node.self_ns > 0 || node.alloc_bytes > 0).then(|| FlatEntry {
                    stack: self.path_of(n),
                    self_ns: node.self_ns,
                    self_bytes: node.alloc_bytes,
                })
            })
            .collect();
        FlatProfile { entries }
    }
}

/// Replaces the frame-separator and token-separator characters that
/// the folded format reserves.
fn sanitize_frame(name: &str) -> String {
    name.chars()
        .map(|c| match c {
            ';' => ':',
            c if c.is_whitespace() || c.is_control() => '_',
            c => c,
        })
        .collect()
}

/// Escapes text for an XML attribute/element context.
fn xml_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' => out.push_str("&quot;"),
            '\'' => out.push_str("&apos;"),
            c if (c as u32) < 0x20 => out.push(' '),
            c => out.push(c),
        }
    }
    out
}

/// Deterministic warm flamegraph color from an FNV-1a hash of the
/// name.
fn color_for(name: &str) -> String {
    let mut h: u64 = 0xcbf29ce484222325;
    for b in name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100000001b3);
    }
    let r = 200 + (h % 56) as u32;
    let g = 60 + ((h >> 8) % 120) as u32;
    let b = 20 + ((h >> 16) % 40) as u32;
    format!("rgb({r},{g},{b})")
}

fn fmt_ns(ns: u64) -> String {
    let s = ns as f64 / 1e9;
    if s >= 1.0 {
        format!("{s:.3}s")
    } else if s >= 1e-3 {
        format!("{:.3}ms", s * 1e3)
    } else {
        format!("{:.1}us", s * 1e6)
    }
}

fn fmt_bytes(b: u64) -> String {
    const KIB: f64 = 1024.0;
    let b = b as f64;
    if b >= KIB * KIB * KIB {
        format!("{:.2}GiB", b / (KIB * KIB * KIB))
    } else if b >= KIB * KIB {
        format!("{:.2}MiB", b / (KIB * KIB))
    } else if b >= KIB {
        format!("{:.1}KiB", b / KIB)
    } else {
        format!("{b:.0}B")
    }
}

/// Output format of a rendered profile.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ProfileFormat {
    /// Collapsed-stack text (`a;b;c self_ns` per line).
    #[default]
    Folded,
    /// Self-contained flamegraph SVG.
    Svg,
    /// Speedscope JSON (wall-time + allocated-bytes profiles).
    Speedscope,
}

impl FromStr for ProfileFormat {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "folded" | "collapsed" => Ok(ProfileFormat::Folded),
            "svg" | "flamegraph" => Ok(ProfileFormat::Svg),
            "speedscope" => Ok(ProfileFormat::Speedscope),
            other => Err(format!(
                "unknown profile format '{other}' (expected 'folded', 'svg', or 'speedscope')"
            )),
        }
    }
}

impl ProfileFormat {
    /// Infers a format from a file path's extension: `.svg` renders the
    /// flamegraph, `.json`/`.speedscope` the speedscope document,
    /// anything else the folded text.
    pub fn infer(path: &str) -> ProfileFormat {
        let lower = path.to_ascii_lowercase();
        if lower.ends_with(".svg") {
            ProfileFormat::Svg
        } else if lower.ends_with(".json") || lower.ends_with(".speedscope") {
            ProfileFormat::Speedscope
        } else {
            ProfileFormat::Folded
        }
    }
}

/// Renders a profile graph in the given format.
pub fn render_profile(graph: &ProfileGraph, format: ProfileFormat) -> String {
    match format {
        ProfileFormat::Folded => graph.to_folded(),
        ProfileFormat::Svg => graph.to_svg(),
        ProfileFormat::Speedscope => graph.to_speedscope(),
    }
}

/// One call path with its self values — a parsed folded line or
/// speedscope sample.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlatEntry {
    /// Frame names, outermost first.
    pub stack: Vec<String>,
    /// Self wall time, nanoseconds.
    pub self_ns: u64,
    /// Self allocated bytes (zero for folded input, which carries no
    /// byte dimension).
    pub self_bytes: u64,
}

/// A parsed profile: path/value rows, the common denominator of the
/// folded and speedscope formats. What `profile report`/`diff`
/// consume.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FlatProfile {
    /// Rows in file order; paths are unique after parsing (duplicate
    /// paths merge by summing).
    pub entries: Vec<FlatEntry>,
}

impl FlatProfile {
    /// Total self wall time across all rows.
    pub fn total_ns(&self) -> u64 {
        self.entries.iter().map(|e| e.self_ns).sum()
    }

    /// Total self allocated bytes across all rows.
    pub fn total_bytes(&self) -> u64 {
        self.entries.iter().map(|e| e.self_bytes).sum()
    }

    /// Parses a profile file, auto-detecting the format: a document
    /// starting with `{` is speedscope JSON, anything else is folded
    /// text. (SVG output is render-only and rejected here.)
    pub fn parse(text: &str) -> Result<FlatProfile, String> {
        let trimmed = text.trim_start();
        if trimmed.starts_with('<') {
            return Err(
                "this looks like an SVG flamegraph; `profile report`/`diff` read \
                 folded or speedscope profiles"
                    .to_string(),
            );
        }
        if trimmed.starts_with('{') {
            Self::from_speedscope(text)
        } else {
            Self::from_folded(text)
        }
    }

    /// Parses collapsed-stack text (`frame;frame;... value` per line).
    pub fn from_folded(text: &str) -> Result<FlatProfile, String> {
        let mut out = FlatProfile::default();
        for (i, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            let (stack_str, value_str) = line
                .rsplit_once(' ')
                .ok_or_else(|| format!("folded line {}: missing value: {line:?}", i + 1))?;
            let value: u64 = value_str
                .parse()
                .map_err(|_| format!("folded line {}: bad value {value_str:?}", i + 1))?;
            let stack: Vec<String> = stack_str.split(';').map(str::to_string).collect();
            if stack.iter().any(String::is_empty) {
                return Err(format!("folded line {}: empty frame in {stack_str:?}", i + 1));
            }
            out.push_merged(stack, value, 0);
        }
        Ok(out)
    }

    /// Parses a speedscope JSON document written by
    /// [`ProfileGraph::to_speedscope`] (or any `"sampled"` speedscope
    /// profile): nanosecond-unit profiles fill `self_ns`, byte-unit
    /// profiles fill `self_bytes`, matched rows merge by stack.
    pub fn from_speedscope(text: &str) -> Result<FlatProfile, String> {
        let doc = serde_json::parse(text).map_err(|e| format!("speedscope document: {e}"))?;
        let top = doc
            .as_object()
            .ok_or("speedscope document: top level is not an object")?;
        let frames = serde_json::find(top, "shared")
            .and_then(|s| s.as_object())
            .and_then(|s| serde_json::find(s, "frames"))
            .and_then(|f| f.as_array())
            .ok_or("speedscope document: missing shared.frames")?;
        let frame_names: Vec<String> = frames
            .iter()
            .map(|f| {
                f.as_object()
                    .and_then(|o| serde_json::find(o, "name"))
                    .and_then(|n| n.as_str())
                    .map(str::to_string)
                    .ok_or("speedscope document: frame without a name".to_string())
            })
            .collect::<Result<_, _>>()?;
        let profiles = serde_json::find(top, "profiles")
            .and_then(|p| p.as_array())
            .ok_or("speedscope document: missing profiles")?;
        let mut out = FlatProfile::default();
        for profile in profiles {
            let p = profile
                .as_object()
                .ok_or("speedscope document: profile is not an object")?;
            let unit = serde_json::find(p, "unit").and_then(|u| u.as_str()).unwrap_or("");
            let is_bytes = unit == "bytes";
            let samples = serde_json::find(p, "samples")
                .and_then(|s| s.as_array())
                .ok_or("speedscope document: profile without samples")?;
            let weights = serde_json::find(p, "weights")
                .and_then(|w| w.as_array())
                .ok_or("speedscope document: profile without weights")?;
            if samples.len() != weights.len() {
                return Err("speedscope document: samples/weights length mismatch".to_string());
            }
            for (sample, weight) in samples.iter().zip(weights) {
                let idxs = sample
                    .as_array()
                    .ok_or("speedscope document: sample is not an array")?;
                let stack: Vec<String> = idxs
                    .iter()
                    .map(|v| {
                        v.as_u64()
                            .and_then(|i| frame_names.get(i as usize).cloned())
                            .ok_or("speedscope document: sample frame index out of range".to_string())
                    })
                    .collect::<Result<_, _>>()?;
                let w = weight
                    .as_f64()
                    .ok_or("speedscope document: weight is not a number")?
                    .max(0.0) as u64;
                if is_bytes {
                    out.push_merged(stack, 0, w);
                } else {
                    out.push_merged(stack, w, 0);
                }
            }
        }
        Ok(out)
    }

    /// Row for `stack`, merging into an existing row when the path was
    /// seen before.
    fn push_merged(&mut self, stack: Vec<String>, self_ns: u64, self_bytes: u64) {
        match self.entries.iter_mut().find(|e| e.stack == stack) {
            Some(e) => {
                e.self_ns += self_ns;
                e.self_bytes += self_bytes;
            }
            None => self.entries.push(FlatEntry {
                stack,
                self_ns,
                self_bytes,
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // Graph construction and exporter behaviour on synthetic timelines
    // live in `tests/profile_export.rs`; here we pin the pure helpers.

    #[test]
    fn profile_format_parses_and_infers() {
        assert_eq!("folded".parse::<ProfileFormat>().unwrap(), ProfileFormat::Folded);
        assert_eq!("svg".parse::<ProfileFormat>().unwrap(), ProfileFormat::Svg);
        assert_eq!(
            "speedscope".parse::<ProfileFormat>().unwrap(),
            ProfileFormat::Speedscope
        );
        assert!("perf".parse::<ProfileFormat>().is_err());
        assert_eq!(ProfileFormat::infer("out/profile.svg"), ProfileFormat::Svg);
        assert_eq!(ProfileFormat::infer("p.json"), ProfileFormat::Speedscope);
        assert_eq!(ProfileFormat::infer("p.folded"), ProfileFormat::Folded);
    }

    #[test]
    fn folded_parse_round_trips_and_merges_duplicates() {
        let text = "a;b 10\na 5\na;b 2\n";
        let p = FlatProfile::from_folded(text).unwrap();
        assert_eq!(p.entries.len(), 2);
        assert_eq!(p.entries[0].stack, vec!["a", "b"]);
        assert_eq!(p.entries[0].self_ns, 12, "duplicate paths merge");
        assert_eq!(p.total_ns(), 17);
        assert!(FlatProfile::from_folded("a;b ten\n").is_err());
        assert!(FlatProfile::from_folded("noval\n").is_err());
    }

    #[test]
    fn sanitize_and_escape_helpers() {
        assert_eq!(sanitize_frame("a;b c\nd"), "a:b_c_d");
        assert_eq!(xml_escape("a<b&\"c'"), "a&lt;b&amp;&quot;c&apos;");
        assert_eq!(color_for("x"), color_for("x"), "colors are deterministic");
    }

    #[test]
    fn parse_rejects_svg_input() {
        assert!(FlatProfile::parse("<svg></svg>").is_err());
    }
}
