//! Bounded retry with exponential backoff and deterministic jitter.
//!
//! Transient failures — a connection refused during a server startup
//! race, an interrupted syscall, a timed-out read — deserve a second
//! chance; permanent ones (ENOSPC, permission denied) do not. This
//! module provides the one retry loop the workspace shares:
//!
//! * [`retry_io`] — run an I/O closure up to [`RetryPolicy::max_attempts`]
//!   times, sleeping an exponentially growing, jittered delay between
//!   attempts, retrying only while [`is_transient`] says the error is
//!   worth retrying.
//! * [`http_get_retry`] — the [`crate::serve::http_get`] client wrapped
//!   in that loop, which deflakes tests and smoke scripts that poll an
//!   endpoint the instant after spawning it.
//!
//! Jitter is **deterministic**: it is derived from a caller-supplied
//! salt and the attempt index via a SplitMix64 hash, never from the
//! clock, so a retrying test is exactly as reproducible as a
//! non-retrying one. The jittered delay for attempt `k` lies in
//! `[(1 - jitter) * d_k, d_k]` with `d_k = min(base * 2^k, max_delay)`,
//! the standard decorrelated band that keeps a thundering herd of
//! retriers from re-colliding in lockstep.

use std::io;
use std::net::SocketAddr;
use std::time::Duration;

use hpcpower_stats::rng::mix_words;

/// Tunables of the shared retry loop.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Total attempts, including the first (so `1` means "no retry").
    pub max_attempts: u32,
    /// Backoff before the second attempt; doubles each further attempt.
    pub base_delay: Duration,
    /// Upper bound on any single backoff delay.
    pub max_delay: Duration,
    /// Fraction of each delay randomized away (0 = fixed delays,
    /// 0.5 = delays drawn from `[d/2, d]`). Clamped to `[0, 1]`.
    pub jitter: f64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            max_attempts: 6,
            base_delay: Duration::from_millis(25),
            max_delay: Duration::from_secs(1),
            jitter: 0.5,
        }
    }
}

impl RetryPolicy {
    /// A policy that never retries — useful to thread through code
    /// paths that take a policy but must fail fast in some mode.
    pub fn none() -> Self {
        Self {
            max_attempts: 1,
            ..Self::default()
        }
    }

    /// The backoff delay before attempt `attempt + 1` (0-based), with
    /// the deterministic jitter for `salt` applied.
    pub fn delay(&self, attempt: u32, salt: u64) -> Duration {
        let exp = self
            .base_delay
            .saturating_mul(1u32 << attempt.min(16))
            .min(self.max_delay);
        let jitter = self.jitter.clamp(0.0, 1.0);
        // 53 high bits of a SplitMix64 hash -> uniform fraction in [0, 1).
        let frac = (mix_words(&[salt, attempt as u64]) >> 11) as f64 / (1u64 << 53) as f64;
        exp.mul_f64(1.0 - jitter * frac)
    }
}

/// Whether an I/O error kind is worth retrying: connection-level races
/// and interrupted/timed-out syscalls are; everything else (not found,
/// permission denied, disk full, invalid data) is permanent.
pub fn is_transient(kind: io::ErrorKind) -> bool {
    matches!(
        kind,
        io::ErrorKind::ConnectionRefused
            | io::ErrorKind::ConnectionReset
            | io::ErrorKind::ConnectionAborted
            | io::ErrorKind::NotConnected
            | io::ErrorKind::AddrInUse
            | io::ErrorKind::BrokenPipe
            | io::ErrorKind::WouldBlock
            | io::ErrorKind::TimedOut
            | io::ErrorKind::Interrupted
            | io::ErrorKind::UnexpectedEof
    )
}

/// Runs `op` under `policy`: up to `max_attempts` tries, backing off
/// between attempts, retrying only transient errors. The closure
/// receives the 0-based attempt index. Every retry bumps the
/// `obs.retry.attempts` counter (no-op while telemetry is disabled).
pub fn retry_io<T>(
    policy: &RetryPolicy,
    salt: u64,
    mut op: impl FnMut(u32) -> io::Result<T>,
) -> io::Result<T> {
    let attempts = policy.max_attempts.max(1);
    let mut last_err = None;
    for attempt in 0..attempts {
        match op(attempt) {
            Ok(v) => return Ok(v),
            Err(e) => {
                let transient = is_transient(e.kind());
                last_err = Some(e);
                if !transient || attempt + 1 == attempts {
                    break;
                }
                crate::counter_add("obs.retry.attempts", 1);
                std::thread::sleep(policy.delay(attempt, salt));
            }
        }
    }
    Err(last_err.unwrap_or_else(|| io::Error::other("retry_io: no attempts made")))
}

/// [`crate::serve::http_get`] with bounded retry/backoff on transient
/// connection errors — the client to use when the server may still be
/// binding (test harnesses, smoke scripts, `--addr-file` races).
/// Retries bump `obs.serve.client_retries`.
pub fn http_get_retry(
    addr: SocketAddr,
    path: &str,
    policy: &RetryPolicy,
) -> io::Result<(u16, String, String)> {
    // Salt the jitter by (addr, path) so concurrent clients spread out.
    let salt = mix_words(&[
        u64::from(addr.port()),
        path.bytes().fold(0u64, |h, b| h.wrapping_mul(31).wrapping_add(b as u64)),
    ]);
    retry_io(policy, salt, |attempt| {
        if attempt > 0 {
            crate::counter_add("obs.serve.client_retries", 1);
        }
        crate::serve::http_get(addr, path)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU32, Ordering};

    fn fast() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 4,
            base_delay: Duration::from_millis(1),
            max_delay: Duration::from_millis(4),
            jitter: 0.5,
        }
    }

    #[test]
    fn succeeds_after_transient_failures() {
        let calls = AtomicU32::new(0);
        let out = retry_io(&fast(), 7, |_| {
            if calls.fetch_add(1, Ordering::Relaxed) < 2 {
                Err(io::Error::new(io::ErrorKind::ConnectionRefused, "not up yet"))
            } else {
                Ok(42)
            }
        });
        assert_eq!(out.unwrap(), 42);
        assert_eq!(calls.load(Ordering::Relaxed), 3);
    }

    #[test]
    fn permanent_errors_fail_fast() {
        let calls = AtomicU32::new(0);
        let out: io::Result<()> = retry_io(&fast(), 7, |_| {
            calls.fetch_add(1, Ordering::Relaxed);
            Err(io::Error::new(io::ErrorKind::PermissionDenied, "no"))
        });
        assert_eq!(out.unwrap_err().kind(), io::ErrorKind::PermissionDenied);
        assert_eq!(calls.load(Ordering::Relaxed), 1, "no retry on permanent errors");
    }

    #[test]
    fn attempts_are_bounded() {
        let calls = AtomicU32::new(0);
        let out: io::Result<()> = retry_io(&fast(), 7, |_| {
            calls.fetch_add(1, Ordering::Relaxed);
            Err(io::Error::new(io::ErrorKind::TimedOut, "slow"))
        });
        assert_eq!(out.unwrap_err().kind(), io::ErrorKind::TimedOut);
        assert_eq!(calls.load(Ordering::Relaxed), 4);
    }

    #[test]
    fn jitter_is_deterministic_and_bounded() {
        let p = RetryPolicy::default();
        for attempt in 0..6 {
            let a = p.delay(attempt, 99);
            let b = p.delay(attempt, 99);
            assert_eq!(a, b, "same salt and attempt must give the same delay");
            let ceiling = p
                .base_delay
                .saturating_mul(1 << attempt)
                .min(p.max_delay);
            assert!(a <= ceiling, "attempt {attempt}: {a:?} > {ceiling:?}");
            assert!(
                a >= ceiling.mul_f64(1.0 - p.jitter),
                "attempt {attempt}: {a:?} below the jitter band"
            );
        }
        // Different salts spread delays apart (not all equal).
        let spread: Vec<Duration> = (0..8).map(|s| p.delay(3, s)).collect();
        assert!(spread.iter().any(|d| *d != spread[0]), "jitter never varies");
    }

    #[test]
    fn zero_attempts_clamps_to_one() {
        let p = RetryPolicy {
            max_attempts: 0,
            ..fast()
        };
        assert_eq!(retry_io(&p, 1, |_| Ok(5)).unwrap(), 5);
    }
}
