//! Runtime-selected telemetry sinks.
//!
//! The CLI's `--log-format {text,json}` flag parses into a
//! [`LogFormat`]; [`render`] turns a [`Snapshot`] into that format's
//! string. The single-document form used by `--metrics-out` files is
//! [`Snapshot::to_json`] and is format-independent.

use std::str::FromStr;

use crate::snapshot::Snapshot;

/// Output format for the telemetry summary sink.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum LogFormat {
    /// Human-readable aligned table.
    #[default]
    Text,
    /// JSON-lines: one self-describing object per metric.
    Jsonl,
}

impl FromStr for LogFormat {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "text" => Ok(LogFormat::Text),
            "json" | "jsonl" => Ok(LogFormat::Jsonl),
            other => Err(format!(
                "unknown log format '{other}' (expected 'text' or 'json')"
            )),
        }
    }
}

/// Renders a snapshot in the given format.
pub fn render(snapshot: &Snapshot, format: LogFormat) -> String {
    match format {
        LogFormat::Text => snapshot.render_text(),
        LogFormat::Jsonl => snapshot.render_jsonl(),
    }
}

/// Output format for `--metrics-out` metric files.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MetricsFormat {
    /// Single JSON document ([`Snapshot::to_json`]).
    #[default]
    Json,
    /// Prometheus text exposition v0.0.4 ([`crate::export::prometheus`]).
    Prom,
}

impl FromStr for MetricsFormat {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "json" => Ok(MetricsFormat::Json),
            "prom" | "prometheus" => Ok(MetricsFormat::Prom),
            other => Err(format!(
                "unknown metrics format '{other}' (expected 'json' or 'prom')"
            )),
        }
    }
}

/// Renders the metrics-file form of a snapshot in the given format.
pub fn render_metrics(snapshot: &Snapshot, format: MetricsFormat) -> String {
    match format {
        MetricsFormat::Json => snapshot.to_json(),
        MetricsFormat::Prom => crate::export::prometheus(snapshot),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::Registry;

    #[test]
    fn log_format_parses_both_spellings() {
        assert_eq!("text".parse::<LogFormat>().unwrap(), LogFormat::Text);
        assert_eq!("json".parse::<LogFormat>().unwrap(), LogFormat::Jsonl);
        assert_eq!("jsonl".parse::<LogFormat>().unwrap(), LogFormat::Jsonl);
        assert!("yaml".parse::<LogFormat>().is_err());
    }

    #[test]
    fn metrics_format_parses_both_spellings() {
        assert_eq!("json".parse::<MetricsFormat>().unwrap(), MetricsFormat::Json);
        assert_eq!("prom".parse::<MetricsFormat>().unwrap(), MetricsFormat::Prom);
        assert_eq!(
            "prometheus".parse::<MetricsFormat>().unwrap(),
            MetricsFormat::Prom
        );
        assert!("xml".parse::<MetricsFormat>().is_err());
    }

    #[test]
    fn render_dispatches_by_format() {
        let r = Registry::new();
        r.set_enabled(true);
        r.counter_add("sink.test.counter", 1);
        let snap = r.snapshot();
        assert!(render(&snap, LogFormat::Text).contains("counters:"));
        assert!(render(&snap, LogFormat::Jsonl).starts_with("{\"type\":\"counter\""));
    }
}
