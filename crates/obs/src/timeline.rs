//! The event timeline: a bounded, lock-sharded ring buffer of span
//! begin/end events.
//!
//! Aggregates (see [`crate::registry`]) answer "how much time was spent
//! in `sim.simulate`?"; the timeline answers "what did the schedule
//! *look like*?" — it records every span open and close as an
//! individual event with a monotonic timestamp, a stable thread id, a
//! unique span id, and the id of the enclosing span on the same thread.
//! [`crate::export::chrome_trace`] renders the recorded events as
//! Chrome trace-event JSON loadable in Perfetto / `chrome://tracing`.
//!
//! ## Ring sizing and drop semantics
//!
//! The buffer is bounded: [`DEFAULT_CAPACITY`] events split evenly over
//! [`SHARDS`] lock shards (a thread always writes to the shard
//! `tid % SHARDS`, so per-thread event order is preserved within a
//! shard). When a shard's ring is full, the *oldest* event in that
//! shard is overwritten and the shard's drop counter increments —
//! truncation is never silent: [`TimelineSnapshot::dropped`] reports
//! the total, and the Chrome exporter embeds it in the trace metadata.
//! The global timeline's capacity can be overridden once at process
//! start with the `HPCPOWER_OBS_TIMELINE_CAPACITY` environment
//! variable.
//!
//! Recording is gated by its own flag ([`Timeline::set_enabled`],
//! reachable via [`crate::enable_timeline`]) *in addition to* the
//! registry's: timelines cost two events and one shard lock per span,
//! so they stay off unless an exporter (e.g. the CLI's `--trace-out`)
//! asked for them.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock};
use std::time::Instant;

/// Number of lock shards. A thread always records into
/// `tid % SHARDS`, so contention is bounded by threads-per-shard.
pub const SHARDS: usize = 8;

/// Default total event capacity of the global timeline (split evenly
/// across shards). Two events per span — the default holds the last
/// ~32k completed spans.
pub const DEFAULT_CAPACITY: usize = 65_536;

/// What an event marks: a span opening or closing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// The span was entered.
    Begin,
    /// The span guard dropped.
    End,
}

/// One recorded span begin/end event.
#[derive(Debug, Clone, PartialEq)]
pub struct TimelineEvent {
    /// Begin or End.
    pub kind: EventKind,
    /// Span name (shared with the aggregate registry's key space).
    pub name: String,
    /// Nanoseconds since the process-wide monotonic epoch; comparable
    /// across threads.
    pub ts_ns: u64,
    /// Stable small integer id of the recording thread.
    pub tid: u64,
    /// Unique id of the span this event belongs to (its Begin and End
    /// share it).
    pub span_id: u64,
    /// Span id of the enclosing span on the same thread, if any.
    pub parent_id: Option<u64>,
    /// Global record sequence number — breaks timestamp ties when
    /// sorting.
    pub seq: u64,
}

/// A frozen copy of the timeline's contents.
#[derive(Debug, Clone, Default)]
pub struct TimelineSnapshot {
    /// Events sorted by `(ts_ns, seq)`.
    pub events: Vec<TimelineEvent>,
    /// Events overwritten by ring wrap-around since the last reset.
    pub dropped: u64,
}

#[derive(Debug)]
struct Shard {
    /// Ring storage; grows up to `cap`, then wraps.
    buf: Vec<TimelineEvent>,
    /// Next overwrite position once the ring is full.
    head: usize,
    cap: usize,
    dropped: u64,
}

impl Shard {
    fn new(cap: usize) -> Self {
        Self {
            buf: Vec::new(),
            head: 0,
            cap,
            dropped: 0,
        }
    }

    fn push(&mut self, ev: TimelineEvent) {
        if self.buf.len() < self.cap {
            self.buf.push(ev);
        } else {
            self.buf[self.head] = ev;
            self.head = (self.head + 1) % self.cap;
            self.dropped += 1;
        }
    }
}

/// A bounded, lock-sharded span event recorder.
#[derive(Debug)]
pub struct Timeline {
    enabled: std::sync::atomic::AtomicBool,
    shards: Vec<Mutex<Shard>>,
    next_seq: AtomicU64,
}

fn lock(m: &Mutex<Shard>) -> MutexGuard<'_, Shard> {
    // Same policy as the registry: telemetry must never take the
    // process down on a poisoned lock.
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

impl Default for Timeline {
    fn default() -> Self {
        Self::with_capacity(DEFAULT_CAPACITY)
    }
}

impl Timeline {
    /// Creates a disabled timeline holding at most `capacity` events
    /// (at least one per shard).
    pub fn with_capacity(capacity: usize) -> Self {
        let per_shard = (capacity / SHARDS).max(1);
        Self {
            enabled: std::sync::atomic::AtomicBool::new(false),
            shards: (0..SHARDS).map(|_| Mutex::new(Shard::new(per_shard))).collect(),
            next_seq: AtomicU64::new(0),
        }
    }

    /// Whether event recording is on.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Turns event recording on or off.
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Relaxed);
    }

    /// Records one event now, on the current thread. No-op when
    /// disabled.
    pub fn record(&self, kind: EventKind, name: &str, span_id: u64, parent_id: Option<u64>) {
        if !self.is_enabled() {
            return;
        }
        let tid = current_tid();
        let ev = TimelineEvent {
            kind,
            name: name.to_string(),
            ts_ns: now_ns(),
            tid,
            span_id,
            parent_id,
            seq: self.next_seq.fetch_add(1, Ordering::Relaxed),
        };
        lock(&self.shards[(tid as usize) % SHARDS]).push(ev);
    }

    /// Copies out every retained event, sorted by `(ts_ns, seq)`, with
    /// the total number of events lost to ring wrap-around.
    pub fn snapshot(&self) -> TimelineSnapshot {
        let mut events = Vec::new();
        let mut dropped = 0;
        for shard in &self.shards {
            let s = lock(shard);
            events.extend(s.buf.iter().cloned());
            dropped += s.dropped;
        }
        events.sort_by_key(|e| (e.ts_ns, e.seq));
        TimelineSnapshot { events, dropped }
    }

    /// Clears all retained events and the drop counters (the enabled
    /// flag is left as is).
    pub fn reset(&self) {
        for shard in &self.shards {
            let mut s = lock(shard);
            s.buf.clear();
            s.head = 0;
            s.dropped = 0;
        }
    }
}

static GLOBAL_TIMELINE: OnceLock<Timeline> = OnceLock::new();

/// The process-wide timeline every span guard reports to.
///
/// Capacity is [`DEFAULT_CAPACITY`] unless the
/// `HPCPOWER_OBS_TIMELINE_CAPACITY` environment variable overrides it
/// (read once, on first use).
pub fn global_timeline() -> &'static Timeline {
    GLOBAL_TIMELINE.get_or_init(|| {
        let cap = std::env::var("HPCPOWER_OBS_TIMELINE_CAPACITY")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .filter(|&c| c > 0)
            .unwrap_or(DEFAULT_CAPACITY);
        Timeline::with_capacity(cap)
    })
}

static EPOCH: OnceLock<Instant> = OnceLock::new();

/// Nanoseconds since the process-wide monotonic epoch (the first call
/// to any timeline entry point).
pub fn now_ns() -> u64 {
    let epoch = EPOCH.get_or_init(Instant::now);
    epoch.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64
}

static NEXT_TID: AtomicU64 = AtomicU64::new(1);

thread_local! {
    static TID: u64 = NEXT_TID.fetch_add(1, Ordering::Relaxed);
}

/// Stable small integer id of the current thread (assigned on first
/// use, never reused within a process).
pub fn current_tid() -> u64 {
    TID.with(|t| *t)
}

static NEXT_SPAN_ID: AtomicU64 = AtomicU64::new(1);

/// Allocates a fresh process-unique span id.
pub fn next_span_id() -> u64 {
    NEXT_SPAN_ID.fetch_add(1, Ordering::Relaxed)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record_span(t: &Timeline, name: &str, parent: Option<u64>) -> u64 {
        let id = next_span_id();
        t.record(EventKind::Begin, name, id, parent);
        t.record(EventKind::End, name, id, parent);
        id
    }

    #[test]
    fn disabled_timeline_records_nothing() {
        let t = Timeline::with_capacity(64);
        record_span(&t, "x", None);
        let snap = t.snapshot();
        assert!(snap.events.is_empty());
        assert_eq!(snap.dropped, 0);
    }

    #[test]
    fn events_carry_ids_and_monotonic_timestamps() {
        let t = Timeline::with_capacity(64);
        t.set_enabled(true);
        let outer = record_span(&t, "outer", None);
        let inner = record_span(&t, "inner", Some(outer));
        let snap = t.snapshot();
        assert_eq!(snap.events.len(), 4);
        assert!(snap.events.windows(2).all(|w| {
            (w[0].ts_ns, w[0].seq) <= (w[1].ts_ns, w[1].seq)
        }));
        let begin_inner = snap
            .events
            .iter()
            .find(|e| e.name == "inner" && e.kind == EventKind::Begin)
            .unwrap();
        assert_eq!(begin_inner.span_id, inner);
        assert_eq!(begin_inner.parent_id, Some(outer));
        assert_eq!(begin_inner.tid, current_tid());
    }

    #[test]
    fn ring_wrap_drops_oldest_and_counts() {
        // Single-thread test: all events land in one shard, whose
        // capacity is 32/SHARDS = 4 events.
        let t = Timeline::with_capacity(32);
        t.set_enabled(true);
        for i in 0..10 {
            let id = next_span_id();
            t.record(EventKind::Begin, &format!("s{i}"), id, None);
        }
        let snap = t.snapshot();
        assert_eq!(snap.events.len(), 4, "ring retains shard capacity");
        assert_eq!(snap.dropped, 6, "every overwrite is counted");
        // The survivors are the newest events.
        assert!(snap.events.iter().any(|e| e.name == "s9"));
        assert!(!snap.events.iter().any(|e| e.name == "s0"));
    }

    #[test]
    fn reset_clears_events_and_drop_counter() {
        let t = Timeline::with_capacity(8);
        t.set_enabled(true);
        for _ in 0..20 {
            record_span(&t, "x", None);
        }
        assert!(t.snapshot().dropped > 0);
        t.reset();
        let snap = t.snapshot();
        assert!(snap.events.is_empty());
        assert_eq!(snap.dropped, 0);
        assert!(t.is_enabled(), "reset must not flip the enabled flag");
    }

    #[test]
    fn concurrent_recording_is_safe_and_complete_under_capacity() {
        let t = std::sync::Arc::new(Timeline::with_capacity(100_000));
        t.set_enabled(true);
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let t = t.clone();
                std::thread::spawn(move || {
                    for _ in 0..500 {
                        record_span(&t, "worker", None);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let snap = t.snapshot();
        assert_eq!(snap.events.len(), 4 * 500 * 2);
        assert_eq!(snap.dropped, 0);
    }
}
