//! Point-in-time, deterministic views of a [`crate::Registry`].
//!
//! A [`Snapshot`] owns plain sorted vectors — safe to hold across
//! further recording, cheap to render. Rendering lives here
//! (text table, JSON-lines, single JSON document); the runtime format
//! choice is in [`crate::sink`].

use std::fmt::Write as _;

/// Aggregated observations of one span name.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanStats {
    /// Number of completed spans.
    pub count: u64,
    /// Total wall time, nanoseconds.
    pub total_ns: u64,
    /// Shortest observation, nanoseconds.
    pub min_ns: u64,
    /// Longest observation, nanoseconds.
    pub max_ns: u64,
    /// Name of the span enclosing the first observation, if any.
    pub parent: Option<String>,
}

impl SpanStats {
    /// Total wall time in seconds.
    pub fn total_secs(&self) -> f64 {
        self.total_ns as f64 / 1e9
    }

    /// Mean observation in seconds.
    pub fn mean_secs(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.total_secs() / self.count as f64
        }
    }
}

/// Frozen view of one histogram.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSnapshot {
    /// Number of recorded values.
    pub count: u64,
    /// Exact mean (Welford, not bucket-approximated).
    pub mean: f64,
    /// Smallest recorded value.
    pub min: f64,
    /// Largest recorded value.
    pub max: f64,
    /// `(upper_bound, count)` per bucket, in bound order.
    pub buckets: Vec<(f64, u64)>,
    /// Values above the last bound.
    pub overflow: u64,
}

/// A deterministic (name-sorted) copy of every metric in a registry.
#[derive(Debug, Clone, Default)]
pub struct Snapshot {
    /// Monotonic counters.
    pub counters: Vec<(String, u64)>,
    /// Last-write-wins gauges.
    pub gauges: Vec<(String, f64)>,
    /// Fixed-bucket histograms.
    pub histograms: Vec<(String, HistogramSnapshot)>,
    /// Span aggregates.
    pub spans: Vec<(String, SpanStats)>,
}

fn find<'a, T>(items: &'a [(String, T)], name: &str) -> Option<&'a T> {
    items
        .binary_search_by(|(k, _)| k.as_str().cmp(name))
        .ok()
        .map(|i| &items[i].1)
}

/// Escapes a string for inclusion in a JSON document.
fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Writes an f64 as a valid JSON number (non-finite values become 0,
/// which keeps consumers simple — telemetry never legitimately
/// produces them).
fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "0".to_string()
    }
}

fn human_duration(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.3}s")
    } else if secs >= 1e-3 {
        format!("{:.3}ms", secs * 1e3)
    } else {
        format!("{:.1}us", secs * 1e6)
    }
}

impl Snapshot {
    /// Value of a counter, if present.
    pub fn counter(&self, name: &str) -> Option<u64> {
        find(&self.counters, name).copied()
    }

    /// Value of a gauge, if present.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        find(&self.gauges, name).copied()
    }

    /// A histogram's frozen view, if present.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        find(&self.histograms, name)
    }

    /// A span's aggregate, if present.
    pub fn span(&self, name: &str) -> Option<&SpanStats> {
        find(&self.spans, name)
    }

    /// Whether nothing at all was recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty()
            && self.gauges.is_empty()
            && self.histograms.is_empty()
            && self.spans.is_empty()
    }

    /// Renders a human-readable text table (the `--log-format text`
    /// sink).
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        if self.is_empty() {
            out.push_str("telemetry: no metrics recorded\n");
            return out;
        }
        let name_w = self
            .counters
            .iter()
            .map(|(n, _)| n.len())
            .chain(self.gauges.iter().map(|(n, _)| n.len()))
            .chain(self.histograms.iter().map(|(n, _)| n.len()))
            .chain(self.spans.iter().map(|(n, _)| n.len()))
            .max()
            .unwrap_or(0);
        if !self.spans.is_empty() {
            let _ = writeln!(out, "spans ({:>w$} count    total     mean      max)", "", w = name_w.saturating_sub(5));
            for (name, s) in &self.spans {
                let _ = writeln!(
                    out,
                    "  {name:<name_w$} {:>5} {:>9} {:>9} {:>9}",
                    s.count,
                    human_duration(s.total_secs()),
                    human_duration(s.mean_secs()),
                    human_duration(s.max_ns as f64 / 1e9),
                );
            }
        }
        if !self.counters.is_empty() {
            let _ = writeln!(out, "counters:");
            for (name, v) in &self.counters {
                let _ = writeln!(out, "  {name:<name_w$} {v}");
            }
        }
        if !self.gauges.is_empty() {
            let _ = writeln!(out, "gauges:");
            for (name, v) in &self.gauges {
                let _ = writeln!(out, "  {name:<name_w$} {v:.4}");
            }
        }
        if !self.histograms.is_empty() {
            let _ = writeln!(out, "histograms (count / mean / min / max):");
            for (name, h) in &self.histograms {
                let _ = writeln!(
                    out,
                    "  {name:<name_w$} {} / {:.3} / {:.3} / {:.3}",
                    h.count, h.mean, h.min, h.max
                );
            }
        }
        out
    }

    /// Renders JSON-lines: one self-describing object per metric (the
    /// `--log-format json` sink).
    pub fn render_jsonl(&self) -> String {
        let mut out = String::new();
        for (name, v) in &self.counters {
            let _ = writeln!(
                out,
                "{{\"type\":\"counter\",\"name\":\"{}\",\"value\":{v}}}",
                escape_json(name)
            );
        }
        for (name, v) in &self.gauges {
            let _ = writeln!(
                out,
                "{{\"type\":\"gauge\",\"name\":\"{}\",\"value\":{}}}",
                escape_json(name),
                json_f64(*v)
            );
        }
        for (name, h) in &self.histograms {
            let _ = writeln!(
                out,
                "{{\"type\":\"histogram\",\"name\":\"{}\",{}}}",
                escape_json(name),
                histogram_fields(h)
            );
        }
        for (name, s) in &self.spans {
            let _ = writeln!(
                out,
                "{{\"type\":\"span\",\"name\":\"{}\",{}}}",
                escape_json(name),
                span_fields(s)
            );
        }
        out
    }

    /// Renders the whole snapshot as one JSON document (the
    /// `--metrics-out` file format):
    ///
    /// ```json
    /// {
    ///   "counters": {"sim.monitor.samples": 123, ...},
    ///   "gauges":   {"sim.monitor.budget_used_frac": 0.42, ...},
    ///   "histograms": {"name": {"count": 3, "mean": ..., "buckets": [...]}},
    ///   "spans":    {"simulate": {"count": 1, "total_ns": ..., ...}}
    /// }
    /// ```
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"counters\": {");
        for (i, (name, v)) in self.counters.iter().enumerate() {
            let sep = if i == 0 { "" } else { "," };
            let _ = write!(out, "{sep}\n    \"{}\": {v}", escape_json(name));
        }
        out.push_str("\n  },\n  \"gauges\": {");
        for (i, (name, v)) in self.gauges.iter().enumerate() {
            let sep = if i == 0 { "" } else { "," };
            let _ = write!(out, "{sep}\n    \"{}\": {}", escape_json(name), json_f64(*v));
        }
        out.push_str("\n  },\n  \"histograms\": {");
        for (i, (name, h)) in self.histograms.iter().enumerate() {
            let sep = if i == 0 { "" } else { "," };
            let _ = write!(
                out,
                "{sep}\n    \"{}\": {{{}}}",
                escape_json(name),
                histogram_fields(h)
            );
        }
        out.push_str("\n  },\n  \"spans\": {");
        for (i, (name, s)) in self.spans.iter().enumerate() {
            let sep = if i == 0 { "" } else { "," };
            let _ = write!(
                out,
                "{sep}\n    \"{}\": {{{}}}",
                escape_json(name),
                span_fields(s)
            );
        }
        out.push_str("\n  }\n}\n");
        out
    }
}

fn span_fields(s: &SpanStats) -> String {
    let parent = match &s.parent {
        Some(p) => format!("\"{}\"", escape_json(p)),
        None => "null".to_string(),
    };
    format!(
        "\"count\":{},\"total_ns\":{},\"min_ns\":{},\"max_ns\":{},\"total_s\":{},\"parent\":{}",
        s.count,
        s.total_ns,
        s.min_ns,
        s.max_ns,
        json_f64(s.total_secs()),
        parent
    )
}

fn histogram_fields(h: &HistogramSnapshot) -> String {
    let mut buckets = String::from("[");
    for (i, (bound, count)) in h.buckets.iter().enumerate() {
        let sep = if i == 0 { "" } else { "," };
        let _ = write!(buckets, "{sep}{{\"le\":{},\"count\":{count}}}", json_f64(*bound));
    }
    buckets.push(']');
    format!(
        "\"count\":{},\"mean\":{},\"min\":{},\"max\":{},\"overflow\":{},\"buckets\":{}",
        h.count,
        json_f64(h.mean),
        json_f64(h.min),
        json_f64(h.max),
        h.overflow,
        buckets
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::Registry;

    fn sample_registry() -> Registry {
        let r = Registry::new();
        r.set_enabled(true);
        r.counter_add("b.counter", 7);
        r.counter_add("a.counter", 3);
        r.gauge_set("z.gauge", 0.5);
        r.histogram_record_with("h.hist", &[1.0, 10.0], 4.0);
        r.record_span("stage.one", None, 1_500_000);
        r.record_span("stage.two", Some("stage.one"), 500_000);
        r
    }

    #[test]
    fn snapshot_is_name_sorted_and_queryable() {
        let snap = sample_registry().snapshot();
        assert_eq!(snap.counters[0].0, "a.counter");
        assert_eq!(snap.counters[1].0, "b.counter");
        assert_eq!(snap.counter("b.counter"), Some(7));
        assert_eq!(snap.gauge("z.gauge"), Some(0.5));
        assert_eq!(snap.histogram("h.hist").unwrap().count, 1);
        let two = snap.span("stage.two").unwrap();
        assert_eq!(two.parent.as_deref(), Some("stage.one"));
        assert!((two.total_secs() - 0.0005).abs() < 1e-12);
    }

    #[test]
    fn text_rendering_mentions_every_metric() {
        let text = sample_registry().snapshot().render_text();
        for needle in ["a.counter", "z.gauge", "h.hist", "stage.one", "stage.two"] {
            assert!(text.contains(needle), "missing {needle} in:\n{text}");
        }
    }

    #[test]
    fn empty_snapshot_renders_placeholder() {
        let snap = Registry::new().snapshot();
        assert!(snap.is_empty());
        assert!(snap.render_text().contains("no metrics"));
        assert_eq!(snap.render_jsonl(), "");
    }

    #[test]
    fn jsonl_has_one_valid_object_per_line() {
        let jsonl = sample_registry().snapshot().render_jsonl();
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(lines.len(), 6, "2 counters + 1 gauge + 1 hist + 2 spans");
        for line in lines {
            let v: serde_json::Value = serde_json::parse(line).expect("valid JSON line");
            let obj = v.as_object().expect("object");
            assert!(obj.iter().any(|(k, _)| k == "type"));
            assert!(obj.iter().any(|(k, _)| k == "name"));
        }
    }

    #[test]
    fn json_document_parses_and_round_trips_names() {
        let doc = sample_registry().snapshot().to_json();
        let v: serde_json::Value = serde_json::parse(&doc).expect("valid JSON document");
        let obj = v.as_object().expect("top-level object");
        let section = |key: &str| {
            obj.iter()
                .find(|(k, _)| k == key)
                .map(|(_, v)| v.as_object().expect("section object"))
                .expect("section present")
        };
        assert_eq!(section("counters").len(), 2);
        assert_eq!(section("gauges").len(), 1);
        assert_eq!(section("histograms").len(), 1);
        let spans = section("spans");
        assert_eq!(spans.len(), 2);
        let one = spans
            .iter()
            .find(|(k, _)| k == "stage.one")
            .map(|(_, v)| v.as_object().unwrap())
            .unwrap();
        let total = one
            .iter()
            .find(|(k, _)| k == "total_ns")
            .and_then(|(_, v)| v.as_u64())
            .unwrap();
        assert_eq!(total, 1_500_000);
    }

    #[test]
    fn json_escaping_handles_special_characters() {
        assert_eq!(escape_json("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_f64(f64::NAN), "0");
        assert_eq!(json_f64(1.5), "1.5");
    }
}
