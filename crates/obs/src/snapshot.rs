//! Point-in-time, deterministic views of a [`crate::Registry`].
//!
//! A [`Snapshot`] owns plain sorted vectors — safe to hold across
//! further recording, cheap to render. Rendering lives here
//! (text table, JSON-lines, single JSON document); the runtime format
//! choice is in [`crate::sink`], and the Prometheus exposition form is
//! in [`crate::export`].

use std::fmt::Write as _;

/// Aggregated observations of one span name.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanStats {
    /// Number of completed spans.
    pub count: u64,
    /// Total wall time, nanoseconds.
    pub total_ns: u64,
    /// Self wall time, nanoseconds: total minus the time completed
    /// child spans reported (so a pure dispatcher span shows ~0).
    pub self_ns: u64,
    /// Shortest observation, nanoseconds.
    pub min_ns: u64,
    /// Longest observation, nanoseconds.
    pub max_ns: u64,
    /// Estimated median duration, nanoseconds (log-bucketed; see
    /// [`crate::Histogram`] for the error bound).
    pub p50_ns: f64,
    /// Estimated 90th-percentile duration, nanoseconds.
    pub p90_ns: f64,
    /// Estimated 99th-percentile duration, nanoseconds.
    pub p99_ns: f64,
    /// Name of the span enclosing the first observation, if any.
    pub parent: Option<String>,
}

impl SpanStats {
    /// Total wall time in seconds.
    pub fn total_secs(&self) -> f64 {
        self.total_ns as f64 / 1e9
    }

    /// Mean observation in seconds.
    pub fn mean_secs(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.total_secs() / self.count as f64
        }
    }
}

/// Frozen view of one log-bucketed histogram.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSnapshot {
    /// Number of recorded values.
    pub count: u64,
    /// Exact sum of recorded values.
    pub sum: f64,
    /// Exact mean (Welford, not bucket-approximated).
    pub mean: f64,
    /// Smallest recorded value.
    pub min: f64,
    /// Largest recorded value.
    pub max: f64,
    /// Estimated median (see [`crate::Histogram`] for the error bound).
    pub p50: f64,
    /// Estimated 90th percentile.
    pub p90: f64,
    /// Estimated 99th percentile.
    pub p99: f64,
    /// `(upper_bound, count)` per non-empty bucket, in bound order; a
    /// leading bound-0 entry counts values ≤ 0.
    pub buckets: Vec<(f64, u64)>,
}

/// Identity of the binary that produced a snapshot (the
/// `hpcpower_build_info` info-gauge in the Prometheus exposition).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BuildInfo {
    /// Short git commit hash, or `"unknown"` outside a checkout.
    pub git_sha: String,
    /// Cargo package version.
    pub version: String,
}

/// A deterministic (name-sorted) copy of every metric in a registry.
#[derive(Debug, Clone, Default)]
pub struct Snapshot {
    /// Identity of the producing binary, when
    /// [`crate::set_build_info`] was called.
    pub build_info: Option<BuildInfo>,
    /// Monotonic counters.
    pub counters: Vec<(String, u64)>,
    /// Last-write-wins gauges.
    pub gauges: Vec<(String, f64)>,
    /// Log-bucketed quantile histograms.
    pub histograms: Vec<(String, HistogramSnapshot)>,
    /// Span aggregates.
    pub spans: Vec<(String, SpanStats)>,
}

fn find<'a, T>(items: &'a [(String, T)], name: &str) -> Option<&'a T> {
    items
        .binary_search_by(|(k, _)| k.as_str().cmp(name))
        .ok()
        .map(|i| &items[i].1)
}

/// Escapes a string for inclusion in a JSON document.
pub(crate) fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Writes an f64 as a valid JSON number (non-finite values become 0,
/// which keeps consumers simple — telemetry never legitimately
/// produces them).
pub(crate) fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "0".to_string()
    }
}

fn human_duration(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.3}s")
    } else if secs >= 1e-3 {
        format!("{:.3}ms", secs * 1e3)
    } else {
        format!("{:.1}us", secs * 1e6)
    }
}

impl Snapshot {
    /// Value of a counter, if present.
    pub fn counter(&self, name: &str) -> Option<u64> {
        find(&self.counters, name).copied()
    }

    /// Value of a gauge, if present.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        find(&self.gauges, name).copied()
    }

    /// A histogram's frozen view, if present.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        find(&self.histograms, name)
    }

    /// A span's aggregate, if present.
    pub fn span(&self, name: &str) -> Option<&SpanStats> {
        find(&self.spans, name)
    }

    /// Sets (or replaces) the gauge `name`, keeping the vector
    /// name-sorted — used to inject derived gauges like
    /// `obs.process.uptime_seconds` without touching the registry.
    pub fn set_gauge(&mut self, name: &str, value: f64) {
        match self.gauges.binary_search_by(|(k, _)| k.as_str().cmp(name)) {
            Ok(i) => self.gauges[i].1 = value,
            Err(i) => self.gauges.insert(i, (name.to_string(), value)),
        }
    }

    /// Sets (or replaces) the counter `name`, keeping the vector
    /// name-sorted — used to inject derived counters like the
    /// `obs.alloc.*` totals, which live outside the registry.
    pub fn set_counter(&mut self, name: &str, value: u64) {
        match self.counters.binary_search_by(|(k, _)| k.as_str().cmp(name)) {
            Ok(i) => self.counters[i].1 = value,
            Err(i) => self.counters.insert(i, (name.to_string(), value)),
        }
    }

    /// Whether nothing at all was recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty()
            && self.gauges.is_empty()
            && self.histograms.is_empty()
            && self.spans.is_empty()
    }

    /// Renders a human-readable text table (the `--log-format text`
    /// sink).
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        if let Some(bi) = &self.build_info {
            let _ = writeln!(out, "build: {} ({})", bi.version, bi.git_sha);
        }
        if self.is_empty() {
            out.push_str("telemetry: no metrics recorded\n");
            return out;
        }
        let name_w = self
            .counters
            .iter()
            .map(|(n, _)| n.len())
            .chain(self.gauges.iter().map(|(n, _)| n.len()))
            .chain(self.histograms.iter().map(|(n, _)| n.len()))
            .chain(self.spans.iter().map(|(n, _)| n.len()))
            .max()
            .unwrap_or(0);
        if !self.spans.is_empty() {
            let _ = writeln!(
                out,
                "spans ({:>w$} count    total     mean      p50      p99      max)",
                "",
                w = name_w.saturating_sub(5)
            );
            for (name, s) in &self.spans {
                let _ = writeln!(
                    out,
                    "  {name:<name_w$} {:>5} {:>9} {:>9} {:>8} {:>8} {:>8}",
                    s.count,
                    human_duration(s.total_secs()),
                    human_duration(s.mean_secs()),
                    human_duration(s.p50_ns / 1e9),
                    human_duration(s.p99_ns / 1e9),
                    human_duration(s.max_ns as f64 / 1e9),
                );
            }
        }
        if !self.counters.is_empty() {
            let _ = writeln!(out, "counters:");
            for (name, v) in &self.counters {
                let _ = writeln!(out, "  {name:<name_w$} {v}");
            }
        }
        if !self.gauges.is_empty() {
            let _ = writeln!(out, "gauges:");
            for (name, v) in &self.gauges {
                let _ = writeln!(out, "  {name:<name_w$} {v:.4}");
            }
        }
        if !self.histograms.is_empty() {
            let _ = writeln!(out, "histograms (count / mean / p50 / p90 / p99 / max):");
            for (name, h) in &self.histograms {
                let _ = writeln!(
                    out,
                    "  {name:<name_w$} {} / {:.3} / {:.3} / {:.3} / {:.3} / {:.3}",
                    h.count, h.mean, h.p50, h.p90, h.p99, h.max
                );
            }
        }
        out
    }

    /// Renders JSON-lines: one self-describing object per metric (the
    /// `--log-format json` sink).
    pub fn render_jsonl(&self) -> String {
        let mut out = String::new();
        if let Some(bi) = &self.build_info {
            let _ = writeln!(
                out,
                "{{\"type\":\"build_info\",\"name\":\"hpcpower_build_info\",\
                 \"git_sha\":\"{}\",\"version\":\"{}\"}}",
                escape_json(&bi.git_sha),
                escape_json(&bi.version)
            );
        }
        for (name, v) in &self.counters {
            let _ = writeln!(
                out,
                "{{\"type\":\"counter\",\"name\":\"{}\",\"value\":{v}}}",
                escape_json(name)
            );
        }
        for (name, v) in &self.gauges {
            let _ = writeln!(
                out,
                "{{\"type\":\"gauge\",\"name\":\"{}\",\"value\":{}}}",
                escape_json(name),
                json_f64(*v)
            );
        }
        for (name, h) in &self.histograms {
            let _ = writeln!(
                out,
                "{{\"type\":\"histogram\",\"name\":\"{}\",{}}}",
                escape_json(name),
                histogram_fields(h)
            );
        }
        for (name, s) in &self.spans {
            let _ = writeln!(
                out,
                "{{\"type\":\"span\",\"name\":\"{}\",{}}}",
                escape_json(name),
                span_fields(s)
            );
        }
        out
    }

    /// Renders the whole snapshot as one JSON document (the
    /// `--metrics-out` file format):
    ///
    /// ```json
    /// {
    ///   "counters": {"sim.monitor.samples": 123, ...},
    ///   "gauges":   {"sim.monitor.budget_used_frac": 0.42, ...},
    ///   "histograms": {"name": {"count": 3, "p50": ..., "buckets": [...]}},
    ///   "spans":    {"simulate": {"count": 1, "total_ns": ..., "p99_ns": ..., ...}}
    /// }
    /// ```
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        if let Some(bi) = &self.build_info {
            let _ = writeln!(
                out,
                "  \"build_info\": {{\"git_sha\": \"{}\", \"version\": \"{}\"}},",
                escape_json(&bi.git_sha),
                escape_json(&bi.version)
            );
        }
        out.push_str("  \"counters\": {");
        for (i, (name, v)) in self.counters.iter().enumerate() {
            let sep = if i == 0 { "" } else { "," };
            let _ = write!(out, "{sep}\n    \"{}\": {v}", escape_json(name));
        }
        out.push_str("\n  },\n  \"gauges\": {");
        for (i, (name, v)) in self.gauges.iter().enumerate() {
            let sep = if i == 0 { "" } else { "," };
            let _ = write!(out, "{sep}\n    \"{}\": {}", escape_json(name), json_f64(*v));
        }
        out.push_str("\n  },\n  \"histograms\": {");
        for (i, (name, h)) in self.histograms.iter().enumerate() {
            let sep = if i == 0 { "" } else { "," };
            let _ = write!(
                out,
                "{sep}\n    \"{}\": {{{}}}",
                escape_json(name),
                histogram_fields(h)
            );
        }
        out.push_str("\n  },\n  \"spans\": {");
        for (i, (name, s)) in self.spans.iter().enumerate() {
            let sep = if i == 0 { "" } else { "," };
            let _ = write!(
                out,
                "{sep}\n    \"{}\": {{{}}}",
                escape_json(name),
                span_fields(s)
            );
        }
        out.push_str("\n  }\n}\n");
        out
    }

    /// Parses a snapshot back out of the [`Snapshot::to_json`]
    /// document form.
    ///
    /// The round trip is byte-lossless: Rust's `{}` formatting of f64
    /// is shortest-round-trip, so `parse(to_json(s)).to_json() ==
    /// s.to_json()` and likewise for the Prometheus rendering — the
    /// property `obs serve --metrics FILE` relies on to serve a
    /// finished run's document byte-for-byte. Missing sections are
    /// treated as empty, so hand-written documents (e.g. alert-eval
    /// fixtures) only need the metrics they mention.
    pub fn from_json(text: &str) -> Result<Snapshot, String> {
        let value =
            serde_json::parse(text).map_err(|e| format!("metrics document: {e}"))?;
        let top = value
            .as_object()
            .ok_or("metrics document: top level is not an object")?;
        let section = |key: &str| -> Result<&[(String, serde_json::Value)], String> {
            match serde_json::find(top, key) {
                Some(v) => v
                    .as_object()
                    .ok_or_else(|| format!("metrics document: {key:?} is not an object")),
                None => Ok(&[]),
            }
        };
        let f64_field = |obj: &[(String, serde_json::Value)], key: &str| -> Result<f64, String> {
            serde_json::find(obj, key)
                .and_then(|v| v.as_f64())
                .ok_or_else(|| format!("metrics document: missing number {key:?}"))
        };
        let u64_field = |obj: &[(String, serde_json::Value)], key: &str| -> Result<u64, String> {
            serde_json::find(obj, key)
                .and_then(|v| v.as_u64())
                .ok_or_else(|| format!("metrics document: missing integer {key:?}"))
        };

        let mut snap = Snapshot::default();
        if let Some(bi) = serde_json::find(top, "build_info") {
            let bi = bi
                .as_object()
                .ok_or("metrics document: \"build_info\" is not an object")?;
            let field = |key: &str| -> Result<String, String> {
                serde_json::find(bi, key)
                    .and_then(|v| v.as_str())
                    .map(str::to_string)
                    .ok_or_else(|| format!("metrics document: missing string {key:?}"))
            };
            snap.build_info = Some(BuildInfo {
                git_sha: field("git_sha")?,
                version: field("version")?,
            });
        }
        for (name, v) in section("counters")? {
            let v = v
                .as_u64()
                .ok_or_else(|| format!("metrics document: counter {name:?} is not a u64"))?;
            snap.counters.push((name.clone(), v));
        }
        for (name, v) in section("gauges")? {
            let v = v
                .as_f64()
                .ok_or_else(|| format!("metrics document: gauge {name:?} is not a number"))?;
            snap.gauges.push((name.clone(), v));
        }
        for (name, v) in section("histograms")? {
            let h = v
                .as_object()
                .ok_or_else(|| format!("metrics document: histogram {name:?} is not an object"))?;
            let mut buckets = Vec::new();
            if let Some(bs) = serde_json::find(h, "buckets") {
                let bs = bs
                    .as_array()
                    .ok_or_else(|| format!("metrics document: {name:?} buckets not an array"))?;
                for b in bs {
                    let b = b
                        .as_object()
                        .ok_or_else(|| format!("metrics document: {name:?} bucket not an object"))?;
                    buckets.push((f64_field(b, "le")?, u64_field(b, "count")?));
                }
            }
            snap.histograms.push((
                name.clone(),
                HistogramSnapshot {
                    count: u64_field(h, "count")?,
                    sum: f64_field(h, "sum")?,
                    mean: f64_field(h, "mean")?,
                    min: f64_field(h, "min")?,
                    max: f64_field(h, "max")?,
                    p50: f64_field(h, "p50")?,
                    p90: f64_field(h, "p90")?,
                    p99: f64_field(h, "p99")?,
                    buckets,
                },
            ));
        }
        for (name, v) in section("spans")? {
            let s = v
                .as_object()
                .ok_or_else(|| format!("metrics document: span {name:?} is not an object"))?;
            let parent = match serde_json::find(s, "parent") {
                None | Some(serde_json::Value::Null) => None,
                Some(p) => Some(
                    p.as_str()
                        .ok_or_else(|| {
                            format!("metrics document: span {name:?} parent is not a string")
                        })?
                        .to_string(),
                ),
            };
            snap.spans.push((
                name.clone(),
                SpanStats {
                    count: u64_field(s, "count")?,
                    total_ns: u64_field(s, "total_ns")?,
                    // Absent in pre-profiling documents; treat as
                    // "no child time reported".
                    self_ns: serde_json::find(s, "self_ns")
                        .and_then(|v| v.as_u64())
                        .unwrap_or_else(|| {
                            serde_json::find(s, "total_ns").and_then(|v| v.as_u64()).unwrap_or(0)
                        }),
                    min_ns: u64_field(s, "min_ns")?,
                    max_ns: u64_field(s, "max_ns")?,
                    p50_ns: f64_field(s, "p50_ns")?,
                    p90_ns: f64_field(s, "p90_ns")?,
                    p99_ns: f64_field(s, "p99_ns")?,
                    parent,
                },
            ));
        }
        snap.counters.sort_by(|a, b| a.0.cmp(&b.0));
        snap.gauges.sort_by(|a, b| a.0.cmp(&b.0));
        snap.histograms.sort_by(|a, b| a.0.cmp(&b.0));
        snap.spans.sort_by(|a, b| a.0.cmp(&b.0));
        Ok(snap)
    }
}

fn span_fields(s: &SpanStats) -> String {
    let parent = match &s.parent {
        Some(p) => format!("\"{}\"", escape_json(p)),
        None => "null".to_string(),
    };
    format!(
        "\"count\":{},\"total_ns\":{},\"self_ns\":{},\"min_ns\":{},\"max_ns\":{},\
         \"p50_ns\":{},\"p90_ns\":{},\"p99_ns\":{},\"total_s\":{},\"parent\":{}",
        s.count,
        s.total_ns,
        s.self_ns,
        s.min_ns,
        s.max_ns,
        json_f64(s.p50_ns),
        json_f64(s.p90_ns),
        json_f64(s.p99_ns),
        json_f64(s.total_secs()),
        parent
    )
}

fn histogram_fields(h: &HistogramSnapshot) -> String {
    let mut buckets = String::from("[");
    for (i, (bound, count)) in h.buckets.iter().enumerate() {
        let sep = if i == 0 { "" } else { "," };
        let _ = write!(buckets, "{sep}{{\"le\":{},\"count\":{count}}}", json_f64(*bound));
    }
    buckets.push(']');
    format!(
        "\"count\":{},\"sum\":{},\"mean\":{},\"min\":{},\"max\":{},\
         \"p50\":{},\"p90\":{},\"p99\":{},\"buckets\":{}",
        h.count,
        json_f64(h.sum),
        json_f64(h.mean),
        json_f64(h.min),
        json_f64(h.max),
        json_f64(h.p50),
        json_f64(h.p90),
        json_f64(h.p99),
        buckets
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::Registry;

    fn sample_registry() -> Registry {
        let r = Registry::new();
        r.set_enabled(true);
        r.counter_add("b.counter", 7);
        r.counter_add("a.counter", 3);
        r.gauge_set("z.gauge", 0.5);
        r.histogram_record("h.hist", 4.0);
        r.record_span("stage.one", None, 1_500_000);
        r.record_span("stage.two", Some("stage.one"), 500_000);
        r
    }

    #[test]
    fn snapshot_is_name_sorted_and_queryable() {
        let snap = sample_registry().snapshot();
        assert_eq!(snap.counters[0].0, "a.counter");
        assert_eq!(snap.counters[1].0, "b.counter");
        assert_eq!(snap.counter("b.counter"), Some(7));
        assert_eq!(snap.gauge("z.gauge"), Some(0.5));
        let h = snap.histogram("h.hist").unwrap();
        assert_eq!(h.count, 1);
        assert_eq!(h.p50, 4.0, "single value is exact");
        assert_eq!(h.sum, 4.0);
        let two = snap.span("stage.two").unwrap();
        assert_eq!(two.parent.as_deref(), Some("stage.one"));
        assert!((two.total_secs() - 0.0005).abs() < 1e-12);
        assert_eq!(two.p50_ns, 500_000.0, "single observation is exact");
    }

    #[test]
    fn text_rendering_mentions_every_metric() {
        let text = sample_registry().snapshot().render_text();
        for needle in ["a.counter", "z.gauge", "h.hist", "stage.one", "stage.two", "p99"] {
            assert!(text.contains(needle), "missing {needle} in:\n{text}");
        }
    }

    #[test]
    fn empty_snapshot_renders_placeholder() {
        let snap = Registry::new().snapshot();
        assert!(snap.is_empty());
        assert!(snap.render_text().contains("no metrics"));
        assert_eq!(snap.render_jsonl(), "");
    }

    #[test]
    fn jsonl_has_one_valid_object_per_line() {
        let jsonl = sample_registry().snapshot().render_jsonl();
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(lines.len(), 6, "2 counters + 1 gauge + 1 hist + 2 spans");
        for line in lines {
            let v: serde_json::Value = serde_json::parse(line).expect("valid JSON line");
            let obj = v.as_object().expect("object");
            assert!(obj.iter().any(|(k, _)| k == "type"));
            assert!(obj.iter().any(|(k, _)| k == "name"));
        }
    }

    #[test]
    fn json_document_parses_and_round_trips_names() {
        let doc = sample_registry().snapshot().to_json();
        let v: serde_json::Value = serde_json::parse(&doc).expect("valid JSON document");
        let obj = v.as_object().expect("top-level object");
        let section = |key: &str| {
            obj.iter()
                .find(|(k, _)| k == key)
                .map(|(_, v)| v.as_object().expect("section object"))
                .expect("section present")
        };
        assert_eq!(section("counters").len(), 2);
        assert_eq!(section("gauges").len(), 1);
        assert_eq!(section("histograms").len(), 1);
        let spans = section("spans");
        assert_eq!(spans.len(), 2);
        let one = spans
            .iter()
            .find(|(k, _)| k == "stage.one")
            .map(|(_, v)| v.as_object().unwrap())
            .unwrap();
        let total = one
            .iter()
            .find(|(k, _)| k == "total_ns")
            .and_then(|(_, v)| v.as_u64())
            .unwrap();
        assert_eq!(total, 1_500_000);
        let p99 = one
            .iter()
            .find(|(k, _)| k == "p99_ns")
            .and_then(|(_, v)| v.as_f64())
            .unwrap();
        assert_eq!(p99, 1_500_000.0, "single observation is exact");
    }

    #[test]
    fn json_escaping_handles_special_characters() {
        assert_eq!(escape_json("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_f64(f64::NAN), "0");
        assert_eq!(json_f64(1.5), "1.5");
    }

    #[test]
    fn set_gauge_inserts_sorted_and_replaces() {
        let mut snap = sample_registry().snapshot();
        snap.set_gauge("a.gauge", 1.0);
        snap.set_gauge("z.gauge", 9.0);
        assert_eq!(snap.gauges[0].0, "a.gauge");
        assert_eq!(snap.gauge("z.gauge"), Some(9.0), "existing gauge replaced");
        assert_eq!(snap.gauges.len(), 2);
    }

    /// The `--metrics-out` JSON document parses back into an equal
    /// snapshot, byte-for-byte through a second render — the property
    /// `obs serve --metrics FILE` relies on.
    #[test]
    fn from_json_round_trips_byte_for_byte() {
        let mut snap = sample_registry().snapshot();
        snap.build_info = Some(BuildInfo {
            git_sha: "abc1234".to_string(),
            version: "0.1.0".to_string(),
        });
        snap.set_gauge("neg.gauge", -2.5);
        let doc = snap.to_json();
        let parsed = Snapshot::from_json(&doc).expect("parses");
        assert_eq!(parsed.to_json(), doc, "JSON round trip is lossless");
        assert_eq!(
            crate::export::prometheus(&parsed),
            crate::export::prometheus(&snap),
            "Prometheus rendering survives the round trip"
        );
        assert_eq!(parsed.counter("b.counter"), Some(7));
        assert_eq!(parsed.build_info.as_ref().unwrap().git_sha, "abc1234");
        assert_eq!(
            parsed.span("stage.two").unwrap().parent.as_deref(),
            Some("stage.one")
        );
    }

    #[test]
    fn from_json_accepts_partial_documents_and_rejects_garbage() {
        let snap = Snapshot::from_json("{\"gauges\": {\"g\": 1.5}}").expect("partial doc");
        assert_eq!(snap.gauge("g"), Some(1.5));
        assert!(snap.counters.is_empty());
        assert!(Snapshot::from_json("[1,2]").is_err());
        assert!(Snapshot::from_json("{\"counters\": {\"c\": -1}}").is_err());
        assert!(Snapshot::from_json("not json").is_err());
    }
}
