//! Process heartbeat for watchdog supervision.
//!
//! Long-running stages prove liveness by *beating*: every
//! [`SpanGuard::enter`](crate::span::SpanGuard::enter) beats when the
//! watchdog is armed, and checkpointed pipelines beat explicitly at
//! chunk boundaries. A supervisor thread (the CLI's `--stage-timeout`
//! watchdog) polls [`last_beat_age_ns`]; if the age exceeds the stage
//! deadline the stage is declared stalled.
//!
//! This module is only the *heartbeat ledger* — two atomics and a
//! monotonic clock. Policy (deadlines, what to do on a stall, exit
//! codes) lives with the supervisor, which also publishes the
//! `obs.watchdog.*` metrics:
//!
//! - `obs.watchdog.beats` (counter) — heartbeats observed, bumped here
//!   only while telemetry is enabled;
//! - `obs.watchdog.last_beat_age_seconds` (gauge) and
//!   `obs.watchdog.stalls` (counter) — published by the supervisor.
//!
//! The disabled path stays on the overhead contract: while unarmed,
//! [`beat_if_armed`] is one relaxed atomic load, mirroring how every
//! other obs entry point gates on [`crate::enabled`]. Arming is
//! independent of [`crate::enable`] — a run can be supervised without
//! collecting any metrics.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

use crate::timeline;

static ARMED: AtomicBool = AtomicBool::new(false);
static LAST_BEAT_NS: AtomicU64 = AtomicU64::new(0);

/// Arms the heartbeat: spans and checkpoint boundaries start feeding
/// [`beat`]. Records an initial beat so the age starts at zero.
pub fn arm() {
    LAST_BEAT_NS.store(timeline::now_ns(), Ordering::Relaxed);
    ARMED.store(true, Ordering::Relaxed);
}

/// Disarms the heartbeat; [`beat_if_armed`] returns to its one-load
/// fast path.
pub fn disarm() {
    ARMED.store(false, Ordering::Relaxed);
}

/// Whether the heartbeat is currently armed.
#[inline]
pub fn armed() -> bool {
    ARMED.load(Ordering::Relaxed)
}

/// Records a heartbeat at the current monotonic timestamp.
pub fn beat() {
    LAST_BEAT_NS.store(timeline::now_ns(), Ordering::Relaxed);
    crate::counter_add("obs.watchdog.beats", 1);
}

/// [`beat`], but only when armed — the form instrumentation sites use.
/// Unarmed cost: one relaxed atomic load.
#[inline]
pub fn beat_if_armed() {
    if armed() {
        beat();
    }
}

/// Nanoseconds since the last beat (0 if a beat just landed). Only
/// meaningful while armed; before the first [`arm`] the epoch beat is
/// the process start.
pub fn last_beat_age_ns() -> u64 {
    timeline::now_ns().saturating_sub(LAST_BEAT_NS.load(Ordering::Relaxed))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn beat_resets_age_and_spans_feed_it() {
        arm();
        assert!(armed());
        std::thread::sleep(std::time::Duration::from_millis(5));
        assert!(last_beat_age_ns() >= 4_000_000, "age should accumulate");
        // A span entry counts as a beat while armed, even with
        // telemetry disabled (the guard itself may be inert).
        let _g = crate::span::SpanGuard::enter("watchdog.test.beat");
        assert!(
            last_beat_age_ns() < 4_000_000,
            "span entry must reset the heartbeat age"
        );
        disarm();
        assert!(!armed());
    }
}
