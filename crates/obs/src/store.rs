//! Sliding-window time-series store: the sampler's landing zone.
//!
//! The registry ([`crate::Registry`]) holds *current* values; the
//! [`WindowStore`] holds their recent *history* — one bounded ring of
//! `(timestamp, value)` points per metric, fed by the periodic sampler
//! ([`crate::Sampler`]) and read by the alert engine
//! ([`crate::AlertEngine`]) and the `/healthz` endpoint.
//!
//! ## Capacity bounds and drop semantics
//!
//! Every series ring holds at most `capacity` points
//! ([`DEFAULT_WINDOW_CAPACITY`] unless overridden). When a ring is
//! full the *oldest* point is overwritten and the ring's drop counter
//! increments — truncation is never silent:
//! [`WindowSnapshot::dropped`] and `/healthz`'s `window_dropped` field
//! report the total. The global store's per-metric capacity can be
//! overridden once at process start with the
//! `HPCPOWER_OBS_WINDOW_CAPACITY` environment variable.
//!
//! ## Gating discipline
//!
//! Same contract as the timeline: the store is off by default and
//! off-cheap. [`crate::sample_now`] checks one relaxed atomic load and
//! returns immediately when sampling is disabled — no locks, no
//! allocation, no clock reads (asserted in `tests/overhead.rs`). The
//! store only ever *reads* registry snapshots; it never participates
//! in pipeline computation, so dataset and report bytes are identical
//! with sampling on or off.
//!
//! ## Timestamps
//!
//! Ingest timestamps come from the process-monotonic clock
//! ([`crate::timeline::now_ns`]). The store additionally clamps each
//! ingest to be `>=` the previous one, so stored series are monotonic
//! by construction even if two samplers race.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock};

use crate::snapshot::Snapshot;

/// Default number of points retained per metric series.
pub const DEFAULT_WINDOW_CAPACITY: usize = 512;

/// One sampled `(timestamp, value)` observation of a metric.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SamplePoint {
    /// Nanoseconds since the process-monotonic epoch.
    pub ts_ns: u64,
    /// The metric's value at that instant (counters are widened to
    /// f64; exact below 2^53, which a per-process counter never
    /// exceeds in practice).
    pub value: f64,
}

#[derive(Debug)]
struct SeriesRing {
    /// Ring storage; grows up to `cap`, then wraps.
    buf: Vec<SamplePoint>,
    /// Next overwrite position once the ring is full.
    head: usize,
    cap: usize,
    dropped: u64,
}

impl SeriesRing {
    fn new(cap: usize) -> Self {
        Self {
            buf: Vec::new(),
            head: 0,
            cap,
            dropped: 0,
        }
    }

    fn push(&mut self, p: SamplePoint) {
        if self.buf.len() < self.cap {
            self.buf.push(p);
        } else {
            self.buf[self.head] = p;
            self.head = (self.head + 1) % self.cap;
            self.dropped += 1;
        }
    }

    /// Points in ingest order, oldest first.
    fn ordered(&self) -> Vec<SamplePoint> {
        let mut out = Vec::with_capacity(self.buf.len());
        out.extend_from_slice(&self.buf[self.head..]);
        out.extend_from_slice(&self.buf[..self.head]);
        out
    }
}

#[derive(Debug, Default)]
struct StoreInner {
    series: BTreeMap<String, SeriesRing>,
    /// Completed ingest passes (one per sampler tick).
    samples: u64,
    /// Monotonic clamp for ingest timestamps.
    last_ts_ns: u64,
}

/// A frozen copy of the window store's contents.
#[derive(Debug, Clone, Default)]
pub struct WindowSnapshot {
    /// `(metric name, points oldest-first)`, name-sorted.
    pub series: Vec<(String, Vec<SamplePoint>)>,
    /// Completed ingest passes.
    pub samples: u64,
    /// Points lost to ring wrap-around, summed over all series.
    pub dropped: u64,
}

impl WindowSnapshot {
    /// Points of one metric's series, oldest first, if present.
    pub fn values(&self, name: &str) -> Option<&[SamplePoint]> {
        self.series
            .binary_search_by(|(k, _)| k.as_str().cmp(name))
            .ok()
            .map(|i| self.series[i].1.as_slice())
    }
}

/// A bounded sliding-window store of per-metric sample rings.
#[derive(Debug)]
pub struct WindowStore {
    enabled: AtomicBool,
    capacity: usize,
    inner: Mutex<StoreInner>,
}

fn lock(m: &Mutex<StoreInner>) -> MutexGuard<'_, StoreInner> {
    // Same policy as the registry: telemetry must never take the
    // process down on a poisoned lock.
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

impl Default for WindowStore {
    fn default() -> Self {
        Self::with_capacity(DEFAULT_WINDOW_CAPACITY)
    }
}

impl WindowStore {
    /// Creates a disabled store retaining at most `capacity` points
    /// per metric (at least one).
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            enabled: AtomicBool::new(false),
            capacity: capacity.max(1),
            inner: Mutex::new(StoreInner::default()),
        }
    }

    /// Whether sampling into this store is on.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Turns sampling on or off.
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Relaxed);
    }

    /// Points retained per metric.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Ingests one registry snapshot at `ts_ns`: every counter (as
    /// f64), every gauge, and each histogram's `.count`/`.p99` derived
    /// series gain one point. No-op when disabled.
    pub fn ingest(&self, snap: &Snapshot, ts_ns: u64) {
        if !self.is_enabled() {
            return;
        }
        let mut inner = lock(&self.inner);
        let ts_ns = ts_ns.max(inner.last_ts_ns);
        inner.last_ts_ns = ts_ns;
        let cap = self.capacity;
        {
            let mut push = |name: &str, value: f64| {
                inner
                    .series
                    .entry(name.to_string())
                    .or_insert_with(|| SeriesRing::new(cap))
                    .push(SamplePoint { ts_ns, value });
            };
            for (name, v) in &snap.counters {
                push(name, *v as f64);
            }
            for (name, v) in &snap.gauges {
                push(name, *v);
            }
            for (name, h) in &snap.histograms {
                push(&format!("{name}.count"), h.count as f64);
                push(&format!("{name}.p99"), h.p99);
            }
        }
        inner.samples += 1;
    }

    /// Completed ingest passes since the last reset.
    pub fn samples(&self) -> u64 {
        lock(&self.inner).samples
    }

    /// Points lost to ring wrap-around, summed over all series.
    pub fn dropped(&self) -> u64 {
        lock(&self.inner).series.values().map(|r| r.dropped).sum()
    }

    /// One metric's points, oldest first (empty if never sampled).
    pub fn values(&self, name: &str) -> Vec<SamplePoint> {
        lock(&self.inner)
            .series
            .get(name)
            .map(|r| r.ordered())
            .unwrap_or_default()
    }

    /// Copies out every series, name-sorted, points oldest-first.
    pub fn snapshot(&self) -> WindowSnapshot {
        let inner = lock(&self.inner);
        WindowSnapshot {
            series: inner
                .series
                .iter()
                .map(|(k, r)| (k.clone(), r.ordered()))
                .collect(),
            samples: inner.samples,
            dropped: inner.series.values().map(|r| r.dropped).sum(),
        }
    }

    /// Clears every series and the counters (the enabled flag is left
    /// as is).
    pub fn reset(&self) {
        let mut inner = lock(&self.inner);
        inner.series.clear();
        inner.samples = 0;
        inner.last_ts_ns = 0;
    }
}

static GLOBAL_STORE: OnceLock<WindowStore> = OnceLock::new();

/// The process-wide window store the sampler feeds.
///
/// Per-metric capacity is [`DEFAULT_WINDOW_CAPACITY`] unless the
/// `HPCPOWER_OBS_WINDOW_CAPACITY` environment variable overrides it
/// (read once, on first use).
pub fn global_store() -> &'static WindowStore {
    GLOBAL_STORE.get_or_init(|| {
        let cap = std::env::var("HPCPOWER_OBS_WINDOW_CAPACITY")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .filter(|&c| c > 0)
            .unwrap_or(DEFAULT_WINDOW_CAPACITY);
        WindowStore::with_capacity(cap)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::Registry;

    fn snap_with(counter: u64, gauge: f64) -> Snapshot {
        let r = Registry::new();
        r.set_enabled(true);
        r.counter_add("t.counter", counter);
        r.gauge_set("t.gauge", gauge);
        r.histogram_record("t.hist", gauge);
        r.snapshot()
    }

    #[test]
    fn disabled_store_ingests_nothing() {
        let s = WindowStore::with_capacity(8);
        s.ingest(&snap_with(1, 2.0), 10);
        assert_eq!(s.samples(), 0);
        assert!(s.snapshot().series.is_empty());
    }

    #[test]
    fn ingest_records_counters_gauges_and_histogram_derivatives() {
        let s = WindowStore::with_capacity(8);
        s.set_enabled(true);
        s.ingest(&snap_with(3, 1.5), 10);
        s.ingest(&snap_with(5, 2.5), 20);
        assert_eq!(s.samples(), 2);
        let c = s.values("t.counter");
        assert_eq!(c.len(), 2);
        assert_eq!(c[0], SamplePoint { ts_ns: 10, value: 3.0 });
        assert_eq!(c[1], SamplePoint { ts_ns: 20, value: 5.0 });
        assert_eq!(s.values("t.gauge")[1].value, 2.5);
        assert_eq!(s.values("t.hist.count")[0].value, 1.0);
        assert_eq!(s.values("t.hist.p99")[1].value, 2.5);
        assert_eq!(s.values("absent"), Vec::new());
    }

    #[test]
    fn ring_wrap_drops_oldest_and_counts() {
        let s = WindowStore::with_capacity(3);
        s.set_enabled(true);
        for i in 0..7u64 {
            s.ingest(&snap_with(i, i as f64), i * 10);
        }
        let pts = s.values("t.gauge");
        assert_eq!(pts.len(), 3, "ring retains capacity");
        assert_eq!(pts[0].value, 4.0, "oldest survivors dropped first");
        assert_eq!(pts[2].value, 6.0);
        assert!(
            pts.windows(2).all(|w| w[0].ts_ns <= w[1].ts_ns),
            "ordered oldest-first"
        );
        // 4 series x 4 overwrites each.
        assert_eq!(s.dropped(), 16);
        assert_eq!(s.snapshot().dropped, 16);
    }

    #[test]
    fn timestamps_are_clamped_monotonic() {
        let s = WindowStore::with_capacity(4);
        s.set_enabled(true);
        s.ingest(&snap_with(1, 0.0), 100);
        s.ingest(&snap_with(2, 0.0), 50); // clock went "backwards"
        let pts = s.values("t.counter");
        assert_eq!(pts[1].ts_ns, 100, "clamped to the previous timestamp");
    }

    #[test]
    fn reset_clears_series_and_counters() {
        let s = WindowStore::with_capacity(2);
        s.set_enabled(true);
        for i in 0..5u64 {
            s.ingest(&snap_with(i, 0.0), i);
        }
        assert!(s.dropped() > 0);
        s.reset();
        assert_eq!(s.samples(), 0);
        assert_eq!(s.dropped(), 0);
        assert!(s.snapshot().series.is_empty());
        assert!(s.is_enabled(), "reset must not flip the enabled flag");
    }

    #[test]
    fn window_snapshot_lookup_by_name() {
        let s = WindowStore::with_capacity(4);
        s.set_enabled(true);
        s.ingest(&snap_with(1, 9.0), 5);
        let ws = s.snapshot();
        assert_eq!(ws.samples, 1);
        assert_eq!(ws.values("t.gauge").unwrap()[0].value, 9.0);
        assert!(ws.values("absent").is_none());
    }
}
