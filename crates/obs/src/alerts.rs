//! Declarative alert rules evaluated against the sliding-window store.
//!
//! ## Rule grammar
//!
//! One rule per `--alert` entry (comma-separated) or rules-file line
//! (`#` starts a comment):
//!
//! ```text
//! name:metric OP threshold[@for]
//! ```
//!
//! - `name` — rule identifier, `[A-Za-z0-9_.-]+`.
//! - `metric` — a registry metric name as sampled into the window
//!   store (counters, gauges, or a histogram's derived `.count`/`.p99`
//!   series), optionally wrapped in `rate(...)` or `burn(...)` to
//!   select the rule kind.
//! - `OP` — one of `>`, `>=`, `<`, `<=`.
//! - `threshold` — an f64 literal.
//! - `@for` — number of consecutive satisfying samples required before
//!   the rule fires (default 1).
//!
//! Examples: `cap:sim.cluster.power_watts>150000@5`,
//! `stall:rate(sim.monitor.samples)<=0@3`,
//! `hot:burn(sim.cluster.nodes_busy)>=2@4`.
//!
//! ## Kinds
//!
//! - [`AlertKind::Threshold`] compares the newest sample.
//! - [`AlertKind::RateOfChange`] (`rate(...)`) compares the difference
//!   between the two newest samples — for counters this is the
//!   per-sample increment.
//! - [`AlertKind::BurnRate`] (`burn(...)`) compares the mean of the
//!   newest `for` samples against the mean of the whole window
//!   (short-window / long-window ratio, the classic SLO burn-rate
//!   shape); undefined (never satisfied) while the long-window mean
//!   is zero.
//!
//! ## State machine
//!
//! `Inactive → Pending → Firing → Resolved → Inactive`. A satisfied
//! condition increments a consecutive-sample counter; at `for` the
//! rule transitions to Firing (before that it is Pending). The first
//! unsatisfied sample moves Firing to Resolved — visible for exactly
//! one evaluation — and anything else back to Inactive. Every
//! evaluation also publishes the `obs.alerts.*` meta-metric family
//! into the registry it is handed.
//!
//! ## Exit codes
//!
//! `hpcpower alerts eval` exits **4** when any rule fired during the
//! evaluation (state Firing at the end, or a recorded
//! firing-transition earlier), 0 when quiet, 2 on usage errors — see
//! the CLI.

use std::fmt;

use crate::registry::Registry;
use crate::snapshot::{escape_json, json_f64};
use crate::store::WindowStore;

/// How a rule interprets its metric's window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AlertKind {
    /// Compare the newest sample against the threshold.
    Threshold,
    /// Compare the newest minus the previous sample.
    RateOfChange,
    /// Compare mean(newest `for` samples) / mean(whole window).
    BurnRate,
}

impl AlertKind {
    /// Stable lower-case name used in JSON and text renderings.
    pub fn as_str(self) -> &'static str {
        match self {
            AlertKind::Threshold => "threshold",
            AlertKind::RateOfChange => "rate_of_change",
            AlertKind::BurnRate => "burn_rate",
        }
    }
}

/// Comparison operator of a rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AlertOp {
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `<`
    Lt,
    /// `<=`
    Le,
}

impl AlertOp {
    /// Whether `value OP threshold` holds.
    pub fn holds(self, value: f64, threshold: f64) -> bool {
        match self {
            AlertOp::Gt => value > threshold,
            AlertOp::Ge => value >= threshold,
            AlertOp::Lt => value < threshold,
            AlertOp::Le => value <= threshold,
        }
    }

    /// The operator's source spelling.
    pub fn as_str(self) -> &'static str {
        match self {
            AlertOp::Gt => ">",
            AlertOp::Ge => ">=",
            AlertOp::Lt => "<",
            AlertOp::Le => "<=",
        }
    }
}

/// One declarative alert rule.
#[derive(Debug, Clone, PartialEq)]
pub struct AlertRule {
    /// Rule identifier (unique within an engine).
    pub name: String,
    /// Window-store metric the rule watches.
    pub metric: String,
    /// Comparison operator.
    pub op: AlertOp,
    /// Threshold the derived value is compared against.
    pub threshold: f64,
    /// Consecutive satisfying samples required to fire (>= 1).
    pub for_samples: usize,
    /// How the watched window is reduced to one value.
    pub kind: AlertKind,
}

fn valid_rule_name(s: &str) -> bool {
    !s.is_empty()
        && s.chars()
            .all(|c| c.is_ascii_alphanumeric() || matches!(c, '_' | '.' | '-'))
}

impl AlertRule {
    /// Parses one rule from the `name:metric OP value[@for]` grammar.
    pub fn parse(input: &str) -> Result<AlertRule, String> {
        let s = input.trim();
        let err = |msg: &str| format!("alert rule {input:?}: {msg}");
        let (name, rest) = s
            .split_once(':')
            .ok_or_else(|| err("missing ':' between rule name and expression"))?;
        let name = name.trim();
        if !valid_rule_name(name) {
            return Err(err("rule name must be non-empty [A-Za-z0-9_.-]+"));
        }
        // Two-character operators first so ">=" is not read as ">".
        let (op_idx, op, op_len) = ["<=", ">=", "<", ">"]
            .iter()
            .filter_map(|sym| rest.find(sym).map(|i| (i, *sym)))
            .min_by_key(|&(i, sym)| (i, sym.len() == 1))
            .map(|(i, sym)| {
                let op = match sym {
                    ">" => AlertOp::Gt,
                    ">=" => AlertOp::Ge,
                    "<" => AlertOp::Lt,
                    _ => AlertOp::Le,
                };
                (i, op, sym.len())
            })
            .ok_or_else(|| err("missing comparison operator (one of > >= < <=)"))?;
        let metric_part = rest[..op_idx].trim();
        let after = rest[op_idx + op_len..].trim();
        let (threshold_str, for_str) = match after.split_once('@') {
            Some((t, f)) => (t.trim(), f.trim()),
            None => (after, "1"),
        };
        let threshold: f64 = threshold_str
            .parse()
            .map_err(|_| err("threshold is not a number"))?;
        let for_samples: usize = for_str
            .parse()
            .map_err(|_| err("'@for' sample count is not an integer"))?;
        if for_samples == 0 {
            return Err(err("'@for' sample count must be >= 1"));
        }
        let (kind, metric) = if let Some(inner) = metric_part
            .strip_prefix("rate(")
            .and_then(|m| m.strip_suffix(')'))
        {
            (AlertKind::RateOfChange, inner.trim())
        } else if let Some(inner) = metric_part
            .strip_prefix("burn(")
            .and_then(|m| m.strip_suffix(')'))
        {
            (AlertKind::BurnRate, inner.trim())
        } else {
            (AlertKind::Threshold, metric_part)
        };
        if metric.is_empty() {
            return Err(err("metric name is empty"));
        }
        Ok(AlertRule {
            name: name.to_string(),
            metric: metric.to_string(),
            op,
            threshold,
            for_samples,
            kind,
        })
    }
}

impl fmt::Display for AlertRule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let metric = match self.kind {
            AlertKind::Threshold => self.metric.clone(),
            AlertKind::RateOfChange => format!("rate({})", self.metric),
            AlertKind::BurnRate => format!("burn({})", self.metric),
        };
        write!(
            f,
            "{}:{}{}{}@{}",
            self.name,
            metric,
            self.op.as_str(),
            self.threshold,
            self.for_samples
        )
    }
}

/// Parses a rules document: one rule per line, blank lines and `#`
/// comments ignored.
pub fn parse_rules(text: &str) -> Result<Vec<AlertRule>, String> {
    let mut rules = Vec::new();
    for (idx, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let rule = AlertRule::parse(line).map_err(|e| format!("line {}: {e}", idx + 1))?;
        if rules.iter().any(|r: &AlertRule| r.name == rule.name) {
            return Err(format!("line {}: duplicate rule name {:?}", idx + 1, rule.name));
        }
        rules.push(rule);
    }
    Ok(rules)
}

/// Parses a comma/semicolon-separated `--alert` flag value.
pub fn parse_rule_list(text: &str) -> Result<Vec<AlertRule>, String> {
    text.split([',', ';'])
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .map(AlertRule::parse)
        .collect()
}

/// Lifecycle state of one rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AlertState {
    /// Condition not satisfied.
    Inactive,
    /// Condition satisfied, but for fewer than `for` samples.
    Pending,
    /// Condition satisfied for at least `for` consecutive samples.
    Firing,
    /// Was firing; condition just stopped being satisfied.
    Resolved,
}

impl AlertState {
    /// Stable lower-case name used in JSON and text renderings.
    pub fn as_str(self) -> &'static str {
        match self {
            AlertState::Inactive => "inactive",
            AlertState::Pending => "pending",
            AlertState::Firing => "firing",
            AlertState::Resolved => "resolved",
        }
    }

    /// Numeric code published as the rule's state gauge
    /// (`obs.alerts.rule.<name>`).
    pub fn code(self) -> f64 {
        match self {
            AlertState::Inactive => 0.0,
            AlertState::Pending => 1.0,
            AlertState::Firing => 2.0,
            AlertState::Resolved => 3.0,
        }
    }
}

/// Mutable evaluation status of one rule.
#[derive(Debug, Clone, PartialEq)]
pub struct RuleStatus {
    /// Current lifecycle state.
    pub state: AlertState,
    /// Value the rule's kind derived at the last evaluation, if the
    /// window held enough samples to define one.
    pub value: Option<f64>,
    /// Consecutive satisfying samples seen so far.
    pub consecutive: usize,
    /// Times the rule has transitioned into Firing.
    pub fired_count: u64,
}

impl Default for RuleStatus {
    fn default() -> Self {
        Self {
            state: AlertState::Inactive,
            value: None,
            consecutive: 0,
            fired_count: 0,
        }
    }
}

/// Evaluates a fixed rule set against a window store, tracking state.
#[derive(Debug)]
pub struct AlertEngine {
    rules: Vec<AlertRule>,
    status: Vec<RuleStatus>,
    evals: u64,
}

impl AlertEngine {
    /// Builds an engine over a fixed rule set (all rules Inactive).
    pub fn new(rules: Vec<AlertRule>) -> Self {
        let status = vec![RuleStatus::default(); rules.len()];
        Self {
            rules,
            status,
            evals: 0,
        }
    }

    /// Whether the engine has no rules at all.
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }

    /// The engine's rules, in declaration order.
    pub fn rules(&self) -> &[AlertRule] {
        &self.rules
    }

    /// A rule's current status, by rule name.
    pub fn status(&self, name: &str) -> Option<&RuleStatus> {
        self.rules
            .iter()
            .position(|r| r.name == name)
            .map(|i| &self.status[i])
    }

    /// Completed evaluation passes.
    pub fn evals(&self) -> u64 {
        self.evals
    }

    /// `(firing, pending)` rule counts right now.
    pub fn status_counts(&self) -> (usize, usize) {
        let firing = self
            .status
            .iter()
            .filter(|s| s.state == AlertState::Firing)
            .count();
        let pending = self
            .status
            .iter()
            .filter(|s| s.state == AlertState::Pending)
            .count();
        (firing, pending)
    }

    /// Whether any rule is currently Firing.
    pub fn any_firing(&self) -> bool {
        self.status.iter().any(|s| s.state == AlertState::Firing)
    }

    /// Whether any rule fired at any point since construction.
    pub fn ever_fired(&self) -> bool {
        self.status.iter().any(|s| s.fired_count > 0)
    }

    /// Evaluates every rule against the store's current windows and
    /// advances the state machine one step. When a registry is given,
    /// publishes the `obs.alerts.*` meta-metrics into it (subject to
    /// the registry's own enabled gate).
    pub fn evaluate(&mut self, store: &WindowStore, registry: Option<&Registry>) {
        self.evals += 1;
        let mut transitions = 0u64;
        for (rule, st) in self.rules.iter().zip(&mut self.status) {
            let series = store.values(&rule.metric);
            let value = derive_value(rule, &series);
            st.value = value;
            let satisfied = value.is_some_and(|v| rule.op.holds(v, rule.threshold));
            let before = st.state;
            if satisfied {
                st.consecutive += 1;
                if st.consecutive >= rule.for_samples {
                    st.state = AlertState::Firing;
                    if before != AlertState::Firing {
                        st.fired_count += 1;
                    }
                } else {
                    st.state = AlertState::Pending;
                }
            } else {
                st.consecutive = 0;
                st.state = match before {
                    AlertState::Firing => AlertState::Resolved,
                    _ => AlertState::Inactive,
                };
            }
            if st.state != before {
                transitions += 1;
            }
        }
        if let Some(reg) = registry {
            reg.counter_add("obs.alerts.evals", 1);
            reg.counter_add("obs.alerts.transitions", transitions);
            let (firing, pending) = self.status_counts();
            reg.gauge_set("obs.alerts.firing", firing as f64);
            reg.gauge_set("obs.alerts.pending", pending as f64);
            for (rule, st) in self.rules.iter().zip(&self.status) {
                reg.gauge_set(&format!("obs.alerts.rule.{}", rule.name), st.state.code());
            }
        }
    }

    /// Renders the engine's state as one JSON document (the `/alerts`
    /// endpoint body).
    pub fn to_json(&self) -> String {
        use std::fmt::Write as _;
        let (firing, pending) = self.status_counts();
        let mut out = format!(
            "{{\n  \"firing\": {firing},\n  \"pending\": {pending},\n  \"evals\": {},\n  \"rules\": [",
            self.evals
        );
        for (i, (rule, st)) in self.rules.iter().zip(&self.status).enumerate() {
            let sep = if i == 0 { "" } else { "," };
            let value = match st.value {
                Some(v) => json_f64(v),
                None => "null".to_string(),
            };
            let _ = write!(
                out,
                "{sep}\n    {{\"name\":\"{}\",\"metric\":\"{}\",\"kind\":\"{}\",\
                 \"op\":\"{}\",\"threshold\":{},\"for_samples\":{},\
                 \"state\":\"{}\",\"value\":{},\"consecutive\":{},\"fired_count\":{}}}",
                escape_json(&rule.name),
                escape_json(&rule.metric),
                rule.kind.as_str(),
                rule.op.as_str(),
                json_f64(rule.threshold),
                rule.for_samples,
                st.state.as_str(),
                value,
                st.consecutive,
                st.fired_count
            );
        }
        out.push_str("\n  ]\n}\n");
        out
    }

    /// Renders one status line per rule, for CLI summaries.
    pub fn render_text(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for (rule, st) in self.rules.iter().zip(&self.status) {
            let value = match st.value {
                Some(v) => format!("{v:.4}"),
                None => "n/a".to_string(),
            };
            let _ = writeln!(
                out,
                "{:<8} {} ({}({}) {} {} for {}) value={} fired={}",
                st.state.as_str(),
                rule.name,
                rule.kind.as_str(),
                rule.metric,
                rule.op.as_str(),
                rule.threshold,
                rule.for_samples,
                value,
                st.fired_count
            );
        }
        out
    }
}

fn mean(points: &[crate::store::SamplePoint]) -> f64 {
    points.iter().map(|p| p.value).sum::<f64>() / points.len() as f64
}

fn derive_value(rule: &AlertRule, series: &[crate::store::SamplePoint]) -> Option<f64> {
    match rule.kind {
        AlertKind::Threshold => series.last().map(|p| p.value),
        AlertKind::RateOfChange => {
            let n = series.len();
            (n >= 2).then(|| series[n - 1].value - series[n - 2].value)
        }
        AlertKind::BurnRate => {
            if series.is_empty() {
                return None;
            }
            let short_len = rule.for_samples.min(series.len());
            let short = mean(&series[series.len() - short_len..]);
            let long = mean(series);
            (long.abs() > f64::EPSILON).then(|| short / long)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::snapshot::Snapshot;

    fn store_with(name: &str, values: &[f64]) -> WindowStore {
        let s = WindowStore::with_capacity(64);
        s.set_enabled(true);
        for (i, v) in values.iter().enumerate() {
            let snap = Snapshot {
                gauges: vec![(name.to_string(), *v)],
                ..Default::default()
            };
            s.ingest(&snap, i as u64);
        }
        s
    }

    #[test]
    fn parse_accepts_the_documented_grammar() {
        let r = AlertRule::parse("cap:sim.cluster.power_watts>150000@5").unwrap();
        assert_eq!(r.name, "cap");
        assert_eq!(r.metric, "sim.cluster.power_watts");
        assert_eq!(r.op, AlertOp::Gt);
        assert_eq!(r.threshold, 150000.0);
        assert_eq!(r.for_samples, 5);
        assert_eq!(r.kind, AlertKind::Threshold);

        let r = AlertRule::parse("stall:rate(sim.monitor.samples)<=0").unwrap();
        assert_eq!(r.kind, AlertKind::RateOfChange);
        assert_eq!(r.metric, "sim.monitor.samples");
        assert_eq!(r.op, AlertOp::Le);
        assert_eq!(r.for_samples, 1, "@for defaults to 1");

        let r = AlertRule::parse("hot:burn(x.y)>=2.5@4").unwrap();
        assert_eq!(r.kind, AlertKind::BurnRate);
        assert_eq!(r.op, AlertOp::Ge);
        assert_eq!(r.threshold, 2.5);
        // Display round-trips through parse.
        assert_eq!(AlertRule::parse(&r.to_string()).unwrap(), r);
    }

    #[test]
    fn parse_rejects_malformed_rules() {
        for bad in [
            "",
            "noexpr",
            "a:metric",
            "a:metric>abc",
            "a:>1",
            "a:m>1@0",
            "a:m>1@x",
            "bad name:m>1",
            "a:rate()>1",
        ] {
            assert!(AlertRule::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn rules_file_skips_comments_and_rejects_duplicates() {
        let rules = parse_rules("# header\n\na:m>1\nb:rate(m)<0@2\n").unwrap();
        assert_eq!(rules.len(), 2);
        assert!(parse_rules("a:m>1\na:m<2").unwrap_err().contains("duplicate"));
        assert!(parse_rules("a:m>>1").is_err());
    }

    #[test]
    fn flag_list_splits_on_commas_and_semicolons() {
        let rules = parse_rule_list("a:m>1, b:m<2@3; c:burn(m)>=1").unwrap();
        assert_eq!(rules.len(), 3);
        assert_eq!(rules[2].kind, AlertKind::BurnRate);
    }

    #[test]
    fn threshold_walks_pending_firing_resolved_inactive() {
        let rule = AlertRule::parse("hi:g>10@2").unwrap();
        let mut eng = AlertEngine::new(vec![rule]);
        let reg = Registry::new();
        reg.set_enabled(true);

        let s = store_with("g", &[20.0]);
        eng.evaluate(&s, Some(&reg));
        assert_eq!(eng.status("hi").unwrap().state, AlertState::Pending);
        assert!(!eng.any_firing());

        let s = store_with("g", &[20.0, 21.0]);
        // Keep the engine's consecutive counter: evaluate again on a
        // store whose newest sample still satisfies the condition.
        eng.evaluate(&s, Some(&reg));
        let st = eng.status("hi").unwrap();
        assert_eq!(st.state, AlertState::Firing);
        assert_eq!(st.fired_count, 1);
        assert!(eng.any_firing());
        assert_eq!(reg.snapshot().gauge("obs.alerts.firing"), Some(1.0));
        assert_eq!(reg.snapshot().gauge("obs.alerts.rule.hi"), Some(2.0));

        let s = store_with("g", &[20.0, 21.0, 5.0]);
        eng.evaluate(&s, Some(&reg));
        assert_eq!(eng.status("hi").unwrap().state, AlertState::Resolved);
        assert!(!eng.any_firing());
        assert!(eng.ever_fired());

        eng.evaluate(&s, Some(&reg));
        assert_eq!(eng.status("hi").unwrap().state, AlertState::Inactive);
        let snap = reg.snapshot();
        assert_eq!(snap.counter("obs.alerts.evals"), Some(4));
        // pending -> firing -> resolved -> inactive: four transitions.
        assert_eq!(snap.counter("obs.alerts.transitions"), Some(4));
    }

    #[test]
    fn rate_rule_needs_two_samples_and_sees_increments() {
        let rule = AlertRule::parse("inc:rate(c)>5").unwrap();
        let mut eng = AlertEngine::new(vec![rule]);
        eng.evaluate(&store_with("c", &[100.0]), None);
        let st = eng.status("inc").unwrap();
        assert_eq!(st.state, AlertState::Inactive);
        assert_eq!(st.value, None, "one sample defines no rate");

        eng.evaluate(&store_with("c", &[100.0, 110.0]), None);
        let st = eng.status("inc").unwrap();
        assert_eq!(st.value, Some(10.0));
        assert_eq!(st.state, AlertState::Firing);
    }

    #[test]
    fn burn_rule_compares_short_window_to_whole_window() {
        let rule = AlertRule::parse("burn:burn(g)>1.5@2").unwrap();
        let mut eng = AlertEngine::new(vec![rule]);
        // Window mean = (1+1+1+1+10+10)/6 = 4; short mean = 10 -> 2.5x.
        eng.evaluate(&store_with("g", &[1.0, 1.0, 1.0, 1.0, 10.0, 10.0]), None);
        let st = eng.status("burn").unwrap();
        assert_eq!(st.value, Some(2.5));
        assert_eq!(st.state, AlertState::Pending, "needs 2 consecutive");
        eng.evaluate(&store_with("g", &[1.0, 1.0, 1.0, 1.0, 10.0, 10.0]), None);
        assert_eq!(eng.status("burn").unwrap().state, AlertState::Firing);

        // All-zero window: the ratio is undefined, never satisfied.
        let mut eng = AlertEngine::new(vec![AlertRule::parse("z:burn(g)>0@1").unwrap()]);
        eng.evaluate(&store_with("g", &[0.0, 0.0]), None);
        assert_eq!(eng.status("z").unwrap().value, None);
        assert_eq!(eng.status("z").unwrap().state, AlertState::Inactive);
    }

    #[test]
    fn missing_metric_never_satisfies() {
        let mut eng = AlertEngine::new(vec![AlertRule::parse("m:absent>0").unwrap()]);
        eng.evaluate(&store_with("g", &[1.0]), None);
        assert_eq!(eng.status("m").unwrap().state, AlertState::Inactive);
        assert_eq!(eng.status("m").unwrap().value, None);
    }

    #[test]
    fn json_and_text_renderings_mention_every_rule() {
        let rules = parse_rules("a:g>0\nb:rate(g)<100@2").unwrap();
        let mut eng = AlertEngine::new(rules);
        eng.evaluate(&store_with("g", &[5.0]), None);
        let json = eng.to_json();
        let v = serde_json::parse(&json).expect("valid alerts JSON");
        let obj = v.as_object().unwrap();
        let rules_v = serde_json::find(obj, "rules").unwrap().as_array().unwrap();
        assert_eq!(rules_v.len(), 2);
        assert_eq!(
            serde_json::find(obj, "firing").unwrap().as_u64(),
            Some(1),
            "a:g>0 fires immediately"
        );
        let text = eng.render_text();
        assert!(text.contains("firing") && text.contains('a') && text.contains('b'));
    }
}
