//! Ranking with ties (fractional/average ranks).
//!
//! Spearman correlation is Pearson correlation over ranks; ties must be
//! assigned their average rank or the coefficient is biased. Job node
//! counts and requested wall times are heavily tied in real accounting
//! data, so correct tie handling matters for Table 2.

/// Assigns 1-based average ranks to `values`, handling ties by assigning
/// each tied group the mean of the ranks it spans. NaNs receive NaN ranks.
pub fn average_ranks(values: &[f64]) -> Vec<f64> {
    let n = values.len();
    let mut idx: Vec<usize> = (0..n).collect();
    // NaNs sort last and get NaN ranks below.
    idx.sort_by(|&a, &b| match (values[a].is_nan(), values[b].is_nan()) {
        (true, true) => std::cmp::Ordering::Equal,
        (true, false) => std::cmp::Ordering::Greater,
        (false, true) => std::cmp::Ordering::Less,
        (false, false) => values[a].partial_cmp(&values[b]).expect("non-NaN"),
    });
    let mut ranks = vec![f64::NAN; n];
    let mut i = 0;
    while i < n {
        let vi = values[idx[i]];
        if vi.is_nan() {
            break; // all remaining are NaN
        }
        // Find the tied run [i, j).
        let mut j = i + 1;
        while j < n && values[idx[j]] == vi {
            j += 1;
        }
        // Average of ranks i+1 ..= j (1-based).
        let avg = (i + 1 + j) as f64 / 2.0;
        for &k in &idx[i..j] {
            ranks[k] = avg;
        }
        i = j;
    }
    ranks
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_ties() {
        let r = average_ranks(&[30.0, 10.0, 20.0]);
        assert_eq!(r, vec![3.0, 1.0, 2.0]);
    }

    #[test]
    fn simple_tie() {
        // [1, 2, 2, 3] -> ranks [1, 2.5, 2.5, 4]
        let r = average_ranks(&[1.0, 2.0, 2.0, 3.0]);
        assert_eq!(r, vec![1.0, 2.5, 2.5, 4.0]);
    }

    #[test]
    fn all_tied() {
        let r = average_ranks(&[5.0; 4]);
        assert_eq!(r, vec![2.5; 4]);
    }

    #[test]
    fn nan_gets_nan_rank() {
        let r = average_ranks(&[2.0, f64::NAN, 1.0]);
        assert_eq!(r[0], 2.0);
        assert!(r[1].is_nan());
        assert_eq!(r[2], 1.0);
    }

    #[test]
    fn empty_input() {
        assert!(average_ranks(&[]).is_empty());
    }

    #[test]
    fn rank_sum_invariant() {
        // Without NaNs the ranks must sum to n(n+1)/2.
        let data = [3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0, 5.0, 3.0];
        let r = average_ranks(&data);
        let sum: f64 = r.iter().sum();
        let n = data.len() as f64;
        assert!((sum - n * (n + 1.0) / 2.0).abs() < 1e-9);
    }
}
