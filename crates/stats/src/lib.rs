//! # hpcpower-stats
//!
//! Statistics substrate for the HPC power-consumption characterization
//! suite (Patel et al., 2020 reproduction).
//!
//! The paper's analyses are built from a small set of statistical
//! primitives, all of which are implemented here from scratch:
//!
//! * **Descriptive statistics** ([`describe::Summary`]) — numerically
//!   stable (Welford) mean/variance/extrema, coefficient of variation.
//! * **Streaming accumulators** ([`online`]) — one-pass statistics used by
//!   the cluster monitor to summarize per-minute power samples without
//!   storing them (time-above-threshold, spread trackers, etc.).
//! * **Distribution views** — [`histogram::Histogram`] (the paper's PDF
//!   plots), [`ecdf::Ecdf`] (its CDF plots), and [`quantile`] helpers.
//! * **Correlation** ([`correlation`]) — Pearson and Spearman coefficients
//!   with p-values (Table 2), backed by from-scratch special functions
//!   ([`special`]: log-gamma, regularized incomplete beta, erf).
//! * **Concentration analysis** ([`lorenz`]) — Lorenz curves, Gini
//!   coefficients and top-share statistics for the user-level analysis
//!   (Fig. 11).
//! * **Resampling** ([`bootstrap`]) — percentile bootstrap confidence
//!   intervals used to check calibration robustness.
//! * **Deterministic randomness** ([`rng`]) — SplitMix64 plus a stateless
//!   counter-based generator that lets the power model re-derive any
//!   `(job, node, minute)` sample on demand, so multi-gigabyte telemetry
//!   never has to be materialized.
//!
//! All floating-point routines operate on `f64` and are deterministic for
//! a given input ordering.
//!
//! ```
//! use hpcpower_stats::{correlation, Ecdf, Lorenz, Summary};
//!
//! let powers = [120.0, 135.0, 98.0, 160.0, 145.0, 110.0];
//! let s = Summary::from_slice(&powers);
//! assert!((s.mean() - 128.0).abs() < 1.0);
//!
//! let runtimes = [60.0, 240.0, 30.0, 480.0, 300.0, 90.0];
//! let rho = correlation::spearman(&runtimes, &powers).unwrap();
//! assert!(rho.r > 0.5); // longer jobs draw more power here
//!
//! let cdf = Ecdf::new(&powers).unwrap();
//! assert_eq!(cdf.eval(134.9), 0.5);
//!
//! let lorenz = Lorenz::new(&powers).unwrap();
//! assert!(lorenz.top_share(0.5) > 0.5);
//! ```

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod bootstrap;
pub mod correlation;
pub mod describe;
pub mod ecdf;
pub mod histogram;
pub mod kstest;
pub mod lorenz;
pub mod online;
pub mod quantile;
pub mod rank;
pub mod rng;
pub mod special;

pub use correlation::{pearson, spearman, Correlation};
pub use describe::Summary;
pub use ecdf::Ecdf;
pub use histogram::Histogram;
pub use lorenz::Lorenz;
pub use online::StreamingStats;
pub use rng::{CounterRng, SplitMix64};

/// Library-wide error type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StatsError {
    /// The operation needs at least `required` samples but got `actual`.
    NotEnoughSamples {
        /// Minimum number of samples required.
        required: usize,
        /// Number of samples supplied.
        actual: usize,
    },
    /// Two paired slices had different lengths.
    LengthMismatch {
        /// Length of the first slice.
        left: usize,
        /// Length of the second slice.
        right: usize,
    },
    /// An input value was invalid (NaN, non-positive bin width, ...).
    InvalidInput(&'static str),
}

impl std::fmt::Display for StatsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StatsError::NotEnoughSamples { required, actual } => {
                write!(f, "not enough samples: need {required}, got {actual}")
            }
            StatsError::LengthMismatch { left, right } => {
                write!(f, "paired slices differ in length: {left} vs {right}")
            }
            StatsError::InvalidInput(msg) => write!(f, "invalid input: {msg}"),
        }
    }
}

impl std::error::Error for StatsError {}

/// Convenience alias for results produced by this crate.
pub type Result<T> = std::result::Result<T, StatsError>;
