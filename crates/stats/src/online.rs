//! Streaming accumulators for the monitoring pipeline.
//!
//! The paper's temporal and spatial metrics (Figs. 6-10) are all defined
//! on per-minute samples. Computing them for ~80k jobs over 5 months
//! would require storing ~10⁸ samples if done offline; instead the
//! simulator's monitor folds every sample into these one-pass
//! accumulators, mirroring how the real clusters' "continuous system
//! monitoring" aggregated data in production.

use crate::describe::Summary;
use serde::{Deserialize, Serialize};

/// Re-export: the basic streaming summary is [`Summary`] itself.
pub type StreamingStats = Summary;

/// Tracks how much time a signal spends above a threshold that is only
/// known *after* the fact (a fraction of the signal's own mean).
///
/// The paper's Fig. 7(b) metric — "percentage of runtime spent 10% above
/// the mean power consumption" — needs the mean of the whole run before
/// the threshold is known. A strict one-pass computation is impossible,
/// so this accumulator quantizes samples to the nearest multiple of
/// `resolution` in a compact histogram and resolves the count in a second
/// pass over the *histogram* (not the samples). The result is exact for
/// signals quantized at `resolution`, and within `resolution / 2` of the
/// true threshold otherwise — sub-watt for the power analyses.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TimeAboveMeanTracker {
    /// Histogram of samples, bucketed at `resolution` watts.
    counts: Vec<u32>,
    resolution: f64,
    max_value: f64,
    summary: Summary,
    /// Lowest bucket index touched since the last reset. One job's power
    /// signal spans a narrow band of the full `[0, max_value]` range, so
    /// bounding resets and threshold scans to `[lo, hi]` turns both from
    /// O(buckets) into O(band) without changing any result.
    lo: usize,
    /// Highest bucket index touched since the last reset.
    hi: usize,
}

impl TimeAboveMeanTracker {
    /// Creates a tracker for signals in `[0, max_value]` with the given
    /// bucket resolution (in signal units).
    pub fn new(max_value: f64, resolution: f64) -> Self {
        assert!(max_value > 0.0 && resolution > 0.0);
        let buckets = (max_value / resolution).ceil() as usize + 2;
        Self {
            counts: vec![0; buckets],
            resolution,
            max_value,
            summary: Summary::new(),
            lo: usize::MAX,
            hi: 0,
        }
    }

    /// Records one sample. Values outside `[0, max_value]` are clamped.
    #[inline]
    pub fn push(&mut self, value: f64) {
        let v = value.clamp(0.0, self.max_value);
        // Nearest-multiple quantization: bucket i represents the value
        // `i * resolution` exactly.
        let idx = ((v / self.resolution).round() as usize).min(self.counts.len() - 1);
        self.counts[idx] += 1;
        self.lo = self.lo.min(idx);
        self.hi = self.hi.max(idx);
        self.summary.push(v);
    }

    /// Forgets every recorded sample, keeping the bucket allocation —
    /// so a scratch-arena tracker can be reused across jobs without
    /// reallocating its histogram. Only the touched bucket band is
    /// re-zeroed.
    pub fn reset(&mut self) {
        if self.lo <= self.hi {
            self.counts[self.lo..=self.hi].fill(0);
        }
        self.lo = usize::MAX;
        self.hi = 0;
        self.summary = Summary::new();
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.summary.count()
    }

    /// Mean of all recorded samples.
    pub fn mean(&self) -> f64 {
        self.summary.mean()
    }

    /// The underlying running summary.
    pub fn summary(&self) -> &Summary {
        &self.summary
    }

    /// Fraction of samples strictly above `factor * mean` (e.g.
    /// `factor = 1.10` for the paper's "10% above the mean" metric).
    ///
    /// Resolution-limited: each bucket is treated as its representative
    /// value `i * resolution`, so the answer is exact up to quantization
    /// error of `resolution / 2` in sample values.
    pub fn fraction_above_mean_factor(&self, factor: f64) -> f64 {
        let n = self.summary.count();
        if n == 0 {
            return f64::NAN;
        }
        let threshold = self.summary.mean() * factor;
        let mut above = 0u64;
        // Buckets outside [lo, hi] are zero, so scanning only the band
        // yields the exact same count.
        for i in self.lo..=self.hi {
            let c = self.counts[i];
            if c != 0 && i as f64 * self.resolution > threshold {
                above += c as u64;
            }
        }
        above as f64 / n as f64
    }

    /// Peak overshoot relative to the mean: `max / mean - 1`
    /// (the Fig. 7(a) metric).
    pub fn peak_overshoot(&self) -> f64 {
        let m = self.summary.mean();
        if self.summary.count() == 0 || m <= 0.0 {
            return f64::NAN;
        }
        self.summary.max() / m - 1.0
    }

    /// Temporal coefficient of variation of the signal.
    pub fn temporal_cv(&self) -> f64 {
        self.summary.cv()
    }
}

/// Tracks the spatial spread of a per-node signal over time.
///
/// At each timestep the caller reports the (max - min) across nodes; the
/// tracker accumulates the paper's Fig. 8/9 metrics: the *average spatial
/// spread* and the fraction of timesteps whose spread exceeds it. Like
/// [`TimeAboveMeanTracker`], the "above average" part needs the average
/// first, so spreads are bucketed.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SpatialSpreadTracker {
    counts: Vec<u32>,
    resolution: f64,
    max_value: f64,
    summary: Summary,
    /// Touched bucket band, as in [`TimeAboveMeanTracker`].
    lo: usize,
    hi: usize,
}

impl SpatialSpreadTracker {
    /// Creates a tracker for spreads in `[0, max_value]`.
    pub fn new(max_value: f64, resolution: f64) -> Self {
        assert!(max_value > 0.0 && resolution > 0.0);
        let buckets = (max_value / resolution).ceil() as usize + 2;
        Self {
            counts: vec![0; buckets],
            resolution,
            max_value,
            summary: Summary::new(),
            lo: usize::MAX,
            hi: 0,
        }
    }

    /// Records the spread observed at one timestep.
    #[inline]
    pub fn push(&mut self, spread: f64) {
        let v = spread.clamp(0.0, self.max_value);
        let idx = ((v / self.resolution).round() as usize).min(self.counts.len() - 1);
        self.counts[idx] += 1;
        self.lo = self.lo.min(idx);
        self.hi = self.hi.max(idx);
        self.summary.push(v);
    }

    /// Forgets every recorded spread, keeping the bucket allocation
    /// (see [`TimeAboveMeanTracker::reset`]). Only the touched band is
    /// re-zeroed.
    pub fn reset(&mut self) {
        if self.lo <= self.hi {
            self.counts[self.lo..=self.hi].fill(0);
        }
        self.lo = usize::MAX;
        self.hi = 0;
        self.summary = Summary::new();
    }

    /// Number of timesteps recorded.
    pub fn count(&self) -> u64 {
        self.summary.count()
    }

    /// Average spatial spread over the runtime (Fig. 9(a) metric).
    pub fn average_spread(&self) -> f64 {
        self.summary.mean()
    }

    /// Fraction of timesteps whose spread strictly exceeds the average
    /// spread (Fig. 9(c) metric). Quantization error bounded by
    /// `resolution / 2`.
    pub fn fraction_above_average(&self) -> f64 {
        let n = self.summary.count();
        if n == 0 {
            return f64::NAN;
        }
        let threshold = self.summary.mean();
        let mut above = 0u64;
        // Untouched buckets are zero; the band scan is exact.
        for i in self.lo..=self.hi {
            let c = self.counts[i];
            if c != 0 && i as f64 * self.resolution > threshold {
                above += c as u64;
            }
        }
        above as f64 / n as f64
    }
}

/// Running min/max/sum per lane, for tracking per-node energy totals.
///
/// Feeds the Fig. 10 metric: the relative difference between the most-
/// and least-consuming node of a job, `(max - min) / min`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LaneTotals {
    totals: Vec<f64>,
}

impl LaneTotals {
    /// Creates totals for `lanes` parallel lanes (nodes).
    pub fn new(lanes: usize) -> Self {
        Self {
            totals: vec![0.0; lanes],
        }
    }

    /// Adds `value` to lane `lane`.
    #[inline]
    pub fn add(&mut self, lane: usize, value: f64) {
        self.totals[lane] += value;
    }

    /// Re-dimensions to `lanes` zeroed lanes, reusing the allocation
    /// when it is already large enough.
    pub fn reset(&mut self, lanes: usize) {
        self.totals.clear();
        self.totals.resize(lanes, 0.0);
    }

    /// Number of lanes.
    pub fn lanes(&self) -> usize {
        self.totals.len()
    }

    /// The accumulated totals.
    pub fn totals(&self) -> &[f64] {
        &self.totals
    }

    /// Relative max-min imbalance: `(max - min) / min`.
    ///
    /// Returns NaN for zero lanes and +inf when the minimum is zero but
    /// the maximum is not.
    pub fn relative_imbalance(&self) -> f64 {
        if self.totals.is_empty() {
            return f64::NAN;
        }
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        for &t in &self.totals {
            min = min.min(t);
            max = max.max(t);
        }
        if min == 0.0 && max == 0.0 {
            0.0
        } else {
            (max - min) / min
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_above_mean_flat_signal() {
        let mut t = TimeAboveMeanTracker::new(250.0, 0.5);
        for _ in 0..100 {
            t.push(100.0);
        }
        assert_eq!(t.count(), 100);
        assert!((t.mean() - 100.0).abs() < 1e-9);
        assert!(t.fraction_above_mean_factor(1.10) < 1e-9);
        assert!(t.peak_overshoot().abs() < 1e-9);
    }

    #[test]
    fn time_above_mean_known_fraction() {
        // 90 samples at 100 W, 10 samples at 150 W. Mean = 105.
        // Threshold at 1.10*105 = 115.5 -> exactly the 10 samples at 150.
        let mut t = TimeAboveMeanTracker::new(250.0, 0.5);
        for _ in 0..90 {
            t.push(100.0);
        }
        for _ in 0..10 {
            t.push(150.0);
        }
        let frac = t.fraction_above_mean_factor(1.10);
        assert!((frac - 0.10).abs() < 0.005, "frac {frac}");
        let overshoot = t.peak_overshoot();
        assert!((overshoot - (150.0 / 105.0 - 1.0)).abs() < 1e-6);
    }

    #[test]
    fn time_above_mean_clamps() {
        let mut t = TimeAboveMeanTracker::new(100.0, 1.0);
        t.push(-5.0);
        t.push(500.0);
        assert_eq!(t.count(), 2);
        assert!((t.mean() - 50.0).abs() < 1e-9);
    }

    #[test]
    fn spatial_tracker_average_and_fraction() {
        // Spread alternates 10 and 30 -> average 20; half the time above.
        let mut s = SpatialSpreadTracker::new(250.0, 0.5);
        for i in 0..100 {
            s.push(if i % 2 == 0 { 10.0 } else { 30.0 });
        }
        assert!((s.average_spread() - 20.0).abs() < 0.5);
        let f = s.fraction_above_average();
        assert!((f - 0.5).abs() < 0.02, "fraction {f}");
    }

    #[test]
    fn spatial_tracker_constant_spread() {
        let mut s = SpatialSpreadTracker::new(100.0, 0.25);
        for _ in 0..50 {
            s.push(15.0);
        }
        assert!((s.average_spread() - 15.0).abs() < 0.25);
        // Constant signal: no sample is strictly above the mean.
        assert_eq!(s.fraction_above_average(), 0.0);
    }

    #[test]
    fn reset_matches_fresh_trackers() {
        let mut t = TimeAboveMeanTracker::new(250.0, 0.5);
        let mut s = SpatialSpreadTracker::new(250.0, 0.5);
        let mut l = LaneTotals::new(4);
        for i in 0..50 {
            t.push(100.0 + i as f64);
            s.push(i as f64);
            l.add(i % 4, 10.0);
        }
        t.reset();
        s.reset();
        l.reset(2);
        assert_eq!(t.count(), 0);
        assert_eq!(s.count(), 0);
        assert_eq!(l.lanes(), 2);
        assert_eq!(l.totals(), &[0.0, 0.0]);
        // Refilled trackers behave exactly like fresh ones.
        for _ in 0..90 {
            t.push(100.0);
        }
        for _ in 0..10 {
            t.push(150.0);
        }
        let frac = t.fraction_above_mean_factor(1.10);
        assert!((frac - 0.10).abs() < 0.005, "frac {frac}");
        for i in 0..100 {
            s.push(if i % 2 == 0 { 10.0 } else { 30.0 });
        }
        assert!((s.average_spread() - 20.0).abs() < 0.5);
    }

    #[test]
    fn lane_totals_imbalance() {
        let mut l = LaneTotals::new(4);
        for minute in 0..60 {
            let _ = minute;
            l.add(0, 100.0);
            l.add(1, 105.0);
            l.add(2, 110.0);
            l.add(3, 120.0);
        }
        let imb = l.relative_imbalance();
        assert!((imb - 0.20).abs() < 1e-9, "imbalance {imb}");
    }

    #[test]
    fn lane_totals_degenerate() {
        let l = LaneTotals::new(0);
        assert!(l.relative_imbalance().is_nan());
        let z = LaneTotals::new(3);
        assert_eq!(z.relative_imbalance(), 0.0);
    }
}
