//! Percentile bootstrap confidence intervals.
//!
//! Used by the calibration tests to verify that the simulator's summary
//! statistics are stable across seeds, and available to users who want
//! uncertainty estimates on any of the paper's reported statistics.

use crate::rng::SplitMix64;
use crate::{Result, StatsError};

/// A two-sided confidence interval with its point estimate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConfidenceInterval {
    /// Statistic computed on the full sample.
    pub estimate: f64,
    /// Lower bound of the interval.
    pub lo: f64,
    /// Upper bound of the interval.
    pub hi: f64,
    /// Confidence level, e.g. 0.95.
    pub level: f64,
}

/// Percentile bootstrap for an arbitrary statistic.
///
/// Resamples `values` with replacement `resamples` times, evaluates
/// `statistic` on each resample, and returns the percentile interval at
/// the requested confidence `level`.
pub fn bootstrap_ci<F>(
    values: &[f64],
    statistic: F,
    resamples: usize,
    level: f64,
    seed: u64,
) -> Result<ConfidenceInterval>
where
    F: Fn(&[f64]) -> f64,
{
    if values.len() < 2 {
        return Err(StatsError::NotEnoughSamples {
            required: 2,
            actual: values.len(),
        });
    }
    if !(0.0 < level && level < 1.0) {
        return Err(StatsError::InvalidInput("confidence level must be in (0,1)"));
    }
    if resamples == 0 {
        return Err(StatsError::InvalidInput("need at least one resample"));
    }
    let estimate = statistic(values);
    let mut rng = SplitMix64::new(seed);
    let n = values.len();
    let mut stats = Vec::with_capacity(resamples);
    let mut buf = vec![0.0; n];
    for _ in 0..resamples {
        for slot in buf.iter_mut() {
            *slot = values[rng.next_bounded(n as u64) as usize];
        }
        stats.push(statistic(&buf));
    }
    stats.sort_by(|a, b| a.partial_cmp(b).expect("finite statistic expected"));
    let alpha = (1.0 - level) / 2.0;
    let lo = crate::quantile::quantile_sorted(&stats, alpha)?;
    let hi = crate::quantile::quantile_sorted(&stats, 1.0 - alpha)?;
    Ok(ConfidenceInterval {
        estimate,
        lo,
        hi,
        level,
    })
}

/// Bootstrap CI for the mean.
pub fn bootstrap_mean_ci(
    values: &[f64],
    resamples: usize,
    level: f64,
    seed: u64,
) -> Result<ConfidenceInterval> {
    bootstrap_ci(
        values,
        |v| v.iter().sum::<f64>() / v.len() as f64,
        resamples,
        level,
        seed,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_ci_covers_true_mean() {
        let mut rng = SplitMix64::new(4);
        let data: Vec<f64> = (0..500).map(|_| 10.0 + rng.next_normal()).collect();
        let ci = bootstrap_mean_ci(&data, 500, 0.95, 1).unwrap();
        assert!(ci.lo <= 10.0 + 0.2 && ci.hi >= 10.0 - 0.2, "{ci:?}");
        assert!(ci.lo <= ci.estimate && ci.estimate <= ci.hi);
    }

    #[test]
    fn interval_narrows_with_sample_size() {
        let mut rng = SplitMix64::new(8);
        let small: Vec<f64> = (0..50).map(|_| rng.next_normal()).collect();
        let large: Vec<f64> = (0..5000).map(|_| rng.next_normal()).collect();
        let ci_small = bootstrap_mean_ci(&small, 300, 0.95, 2).unwrap();
        let ci_large = bootstrap_mean_ci(&large, 300, 0.95, 2).unwrap();
        assert!(ci_large.hi - ci_large.lo < ci_small.hi - ci_small.lo);
    }

    #[test]
    fn deterministic_for_seed() {
        let data: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let a = bootstrap_mean_ci(&data, 200, 0.9, 7).unwrap();
        let b = bootstrap_mean_ci(&data, 200, 0.9, 7).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn rejects_bad_input() {
        assert!(bootstrap_mean_ci(&[1.0], 100, 0.95, 1).is_err());
        assert!(bootstrap_mean_ci(&[1.0, 2.0], 0, 0.95, 1).is_err());
        assert!(bootstrap_mean_ci(&[1.0, 2.0], 100, 1.5, 1).is_err());
    }

    #[test]
    fn works_for_custom_statistic() {
        let data: Vec<f64> = (0..200).map(|i| (i % 10) as f64).collect();
        let ci = bootstrap_ci(
            &data,
            |v| crate::quantile::median(v).unwrap(),
            200,
            0.95,
            3,
        )
        .unwrap();
        assert!((ci.estimate - 4.5).abs() < 1e-9);
        assert!(ci.lo >= 3.0 && ci.hi <= 6.0);
    }
}
