//! Two-sample Kolmogorov–Smirnov test.
//!
//! Used by the calibration tooling to compare the *shape* of a simulated
//! distribution (e.g. per-node power) against a reference sample, beyond
//! the mean/σ bands: the KS statistic is the maximum CDF gap, and the
//! asymptotic p-value tells whether two traces could plausibly come from
//! the same population.

use crate::quantile::sorted_clean;
use crate::{Result, StatsError};

/// KS test outcome.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KsTest {
    /// The KS statistic: `sup_x |F1(x) - F2(x)|`.
    pub statistic: f64,
    /// Asymptotic two-sided p-value (Kolmogorov distribution).
    pub p_value: f64,
    /// Sample sizes.
    pub n1: usize,
    /// Second sample size.
    pub n2: usize,
}

/// Survival function of the Kolmogorov distribution,
/// `Q(λ) = 2 Σ_{k≥1} (-1)^{k-1} e^{-2 k² λ²}`.
fn kolmogorov_sf(lambda: f64) -> f64 {
    if lambda <= 0.0 {
        return 1.0;
    }
    let mut sum = 0.0;
    let mut sign = 1.0;
    for k in 1..=100 {
        let term = (-2.0 * (k as f64).powi(2) * lambda * lambda).exp();
        sum += sign * term;
        sign = -sign;
        if term < 1e-12 {
            break;
        }
    }
    (2.0 * sum).clamp(0.0, 1.0)
}

/// Two-sample KS test. NaNs are dropped; both samples need ≥ 2 values.
pub fn ks_two_sample(a: &[f64], b: &[f64]) -> Result<KsTest> {
    let sa = sorted_clean(a);
    let sb = sorted_clean(b);
    if sa.len() < 2 || sb.len() < 2 {
        return Err(StatsError::NotEnoughSamples {
            required: 2,
            actual: sa.len().min(sb.len()),
        });
    }
    // Merge walk computing the max CDF gap.
    let (n1, n2) = (sa.len(), sb.len());
    let (mut i, mut j) = (0usize, 0usize);
    let mut d = 0.0f64;
    while i < n1 && j < n2 {
        let x = sa[i].min(sb[j]);
        while i < n1 && sa[i] <= x {
            i += 1;
        }
        while j < n2 && sb[j] <= x {
            j += 1;
        }
        let gap = (i as f64 / n1 as f64 - j as f64 / n2 as f64).abs();
        d = d.max(gap);
    }
    let ne = (n1 as f64 * n2 as f64) / (n1 + n2) as f64;
    let sqrt_ne = ne.sqrt();
    // Asymptotic with the Stephens small-sample correction.
    let lambda = (sqrt_ne + 0.12 + 0.11 / sqrt_ne) * d;
    Ok(KsTest {
        statistic: d,
        p_value: kolmogorov_sf(lambda),
        n1,
        n2,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SplitMix64;

    #[test]
    fn identical_samples_have_high_p() {
        let a: Vec<f64> = (0..200).map(|i| i as f64).collect();
        let t = ks_two_sample(&a, &a).unwrap();
        assert!(t.statistic < 1e-12);
        assert!(t.p_value > 0.99);
    }

    #[test]
    fn same_distribution_not_rejected() {
        let mut rng = SplitMix64::new(1);
        let a: Vec<f64> = (0..500).map(|_| rng.next_normal()).collect();
        let b: Vec<f64> = (0..500).map(|_| rng.next_normal()).collect();
        let t = ks_two_sample(&a, &b).unwrap();
        assert!(t.p_value > 0.01, "p {} for same distribution", t.p_value);
    }

    #[test]
    fn shifted_distribution_rejected() {
        let mut rng = SplitMix64::new(2);
        let a: Vec<f64> = (0..500).map(|_| rng.next_normal()).collect();
        let b: Vec<f64> = (0..500).map(|_| rng.next_normal() + 0.5).collect();
        let t = ks_two_sample(&a, &b).unwrap();
        assert!(t.p_value < 1e-6, "p {} for shifted distribution", t.p_value);
        assert!(t.statistic > 0.15);
    }

    #[test]
    fn statistic_bounded_by_one() {
        let a = [0.0, 1.0, 2.0];
        let b = [10.0, 11.0, 12.0];
        let t = ks_two_sample(&a, &b).unwrap();
        assert!((t.statistic - 1.0).abs() < 1e-12);
        assert!(t.p_value < 0.05);
    }

    #[test]
    fn rejects_tiny_samples() {
        assert!(ks_two_sample(&[1.0], &[1.0, 2.0]).is_err());
        assert!(ks_two_sample(&[], &[]).is_err());
    }

    #[test]
    fn kolmogorov_sf_reference_values() {
        // Q(0.5) ~ 0.9639, Q(1.0) ~ 0.2700, Q(1.5) ~ 0.0222.
        assert!((kolmogorov_sf(0.5) - 0.9639).abs() < 1e-3);
        assert!((kolmogorov_sf(1.0) - 0.2700).abs() < 1e-3);
        assert!((kolmogorov_sf(1.5) - 0.0222).abs() < 1e-3);
        assert_eq!(kolmogorov_sf(0.0), 1.0);
    }
}
