//! Descriptive statistics over slices and iterators.
//!
//! [`Summary`] is the workhorse the whole suite uses to describe a set of
//! per-node power values, runtimes, node counts, etc. It uses Welford's
//! online algorithm for numerical stability, so it doubles as the storage
//! behind the streaming accumulators in [`crate::online`].

use serde::{Deserialize, Serialize};

/// A numerically stable running summary: count, mean, variance, extrema.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Default for Summary {
    fn default() -> Self {
        Self::new()
    }
}

impl Summary {
    /// Creates an empty summary.
    pub fn new() -> Self {
        Self {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Builds a summary from a slice of values. NaNs are ignored.
    pub fn from_slice(values: &[f64]) -> Self {
        let mut s = Self::new();
        for &v in values {
            if v.is_nan() {
                continue;
            }
            s.push(v);
        }
        s
    }

    /// Adds one observation (Welford update).
    #[inline]
    pub fn push(&mut self, value: f64) {
        self.count += 1;
        let delta = value - self.mean;
        self.mean += delta / self.count as f64;
        let delta2 = value - self.mean;
        self.m2 += delta * delta2;
        if value < self.min {
            self.min = value;
        }
        if value > self.max {
            self.max = value;
        }
    }

    /// Merges another summary into this one (parallel-reduction friendly;
    /// Chan et al. pairwise combination).
    pub fn merge(&mut self, other: &Summary) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Whether no observations have been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Arithmetic mean (NaN when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            f64::NAN
        } else {
            self.mean
        }
    }

    /// Population variance (`m2 / n`; NaN when empty).
    pub fn variance_population(&self) -> f64 {
        if self.count == 0 {
            f64::NAN
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Sample variance (`m2 / (n-1)`; NaN for fewer than two values).
    pub fn variance_sample(&self) -> f64 {
        if self.count < 2 {
            f64::NAN
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Population standard deviation.
    pub fn std_dev_population(&self) -> f64 {
        self.variance_population().sqrt()
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance_sample().sqrt()
    }

    /// Coefficient of variation: sample std / |mean|.
    ///
    /// The paper expresses most variability findings as "standard
    /// deviation as a percentage of the mean" (Figs. 12-13); this is that
    /// metric as a fraction.
    pub fn cv(&self) -> f64 {
        let m = self.mean();
        if m == 0.0 {
            f64::NAN
        } else {
            self.std_dev() / m.abs()
        }
    }

    /// Minimum value (+inf when empty).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Maximum value (-inf when empty).
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Range `max - min` (NaN when empty).
    pub fn range(&self) -> f64 {
        if self.count == 0 {
            f64::NAN
        } else {
            self.max - self.min
        }
    }

    /// Sum of observations.
    pub fn sum(&self) -> f64 {
        self.mean() * self.count as f64
    }
}

impl FromIterator<f64> for Summary {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        let mut s = Summary::new();
        for v in iter {
            if !v.is_nan() {
                s.push(v);
            }
        }
        s
    }
}

/// Mean of a slice (NaN if empty).
pub fn mean(values: &[f64]) -> f64 {
    Summary::from_slice(values).mean()
}

/// Sample standard deviation of a slice (NaN if fewer than 2 values).
pub fn std_dev(values: &[f64]) -> f64 {
    Summary::from_slice(values).std_dev()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_summary() {
        let s = Summary::new();
        assert!(s.is_empty());
        assert!(s.mean().is_nan());
        assert!(s.std_dev().is_nan());
        assert!(s.range().is_nan());
    }

    #[test]
    fn simple_values() {
        let s = Summary::from_slice(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.variance_population() - 4.0).abs() < 1e-12);
        assert!((s.std_dev_population() - 2.0).abs() < 1e-12);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
        assert_eq!(s.range(), 7.0);
        assert!((s.sum() - 40.0).abs() < 1e-9);
    }

    #[test]
    fn single_value() {
        let s = Summary::from_slice(&[3.5]);
        assert_eq!(s.mean(), 3.5);
        assert!(s.std_dev().is_nan());
        assert_eq!(s.variance_population(), 0.0);
    }

    #[test]
    fn nan_values_ignored() {
        let s = Summary::from_slice(&[1.0, f64::NAN, 3.0]);
        assert_eq!(s.count(), 2);
        assert!((s.mean() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn merge_equals_sequential() {
        let data: Vec<f64> = (0..1000).map(|i| (i as f64 * 0.37).sin() * 50.0 + 100.0).collect();
        let whole = Summary::from_slice(&data);
        let mut left = Summary::from_slice(&data[..313]);
        let right = Summary::from_slice(&data[313..]);
        left.merge(&right);
        assert_eq!(left.count(), whole.count());
        assert!((left.mean() - whole.mean()).abs() < 1e-9);
        assert!((left.std_dev() - whole.std_dev()).abs() < 1e-9);
        assert_eq!(left.min(), whole.min());
        assert_eq!(left.max(), whole.max());
    }

    #[test]
    fn merge_with_empty() {
        let mut a = Summary::from_slice(&[1.0, 2.0]);
        let before = a;
        a.merge(&Summary::new());
        assert_eq!(a, before);

        let mut e = Summary::new();
        e.merge(&before);
        assert_eq!(e, before);
    }

    #[test]
    fn cv_matches_definition() {
        let s = Summary::from_slice(&[100.0, 110.0, 90.0, 105.0, 95.0]);
        let expected = s.std_dev() / s.mean();
        assert!((s.cv() - expected).abs() < 1e-12);
    }

    #[test]
    fn welford_is_stable_for_large_offsets() {
        // Naive sum-of-squares catastrophically cancels here.
        let base = 1e9;
        let data: Vec<f64> = (0..1000).map(|i| base + (i % 7) as f64).collect();
        let s = Summary::from_slice(&data);
        // Variance of (i % 7) over uniform residues 0..7 = 4.0.
        assert!((s.variance_population() - 4.0).abs() < 0.01, "{}", s.variance_population());
    }

    #[test]
    fn from_iterator_collects() {
        let s: Summary = (1..=5).map(|x| x as f64).collect();
        assert_eq!(s.count(), 5);
        assert!((s.mean() - 3.0).abs() < 1e-12);
    }
}
