//! Uniform-bin histograms and probability density estimates.
//!
//! The paper's Figs. 3 and 10 are PDF plots of per-node power and of
//! node-energy imbalance. [`Histogram`] produces exactly that view: a
//! uniform binning whose bar heights integrate to one.

use serde::{Deserialize, Serialize};

use crate::{Result, StatsError};

/// A histogram with uniform bins over `[lo, hi)`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    counts: Vec<u64>,
    below: u64,
    above: u64,
    total: u64,
}

impl Histogram {
    /// Creates a histogram with `bins` uniform bins over `[lo, hi)`.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Result<Self> {
        if lo >= hi || lo.is_nan() || hi.is_nan() {
            return Err(StatsError::InvalidInput("histogram needs lo < hi"));
        }
        if bins == 0 {
            return Err(StatsError::InvalidInput("histogram needs at least one bin"));
        }
        Ok(Self {
            lo,
            hi,
            counts: vec![0; bins],
            below: 0,
            above: 0,
            total: 0,
        })
    }

    /// Builds a histogram over data with automatic range.
    pub fn from_data(values: &[f64], bins: usize) -> Result<Self> {
        let clean: Vec<f64> = values.iter().copied().filter(|v| v.is_finite()).collect();
        if clean.is_empty() {
            return Err(StatsError::NotEnoughSamples {
                required: 1,
                actual: 0,
            });
        }
        let lo = clean.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = clean.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        // Widen degenerate ranges so every sample lands in-range.
        let (lo, hi) = if lo == hi {
            (lo - 0.5, hi + 0.5)
        } else {
            (lo, hi + (hi - lo) * 1e-9)
        };
        let mut h = Self::new(lo, hi, bins)?;
        for v in clean {
            h.push(v);
        }
        Ok(h)
    }

    /// Records one observation. Out-of-range values are tallied in the
    /// underflow/overflow counters and excluded from density mass.
    #[inline]
    pub fn push(&mut self, value: f64) {
        if value.is_nan() {
            return;
        }
        self.total += 1;
        if value < self.lo {
            self.below += 1;
        } else if value >= self.hi {
            self.above += 1;
        } else {
            let width = (self.hi - self.lo) / self.counts.len() as f64;
            let idx = ((value - self.lo) / width) as usize;
            let idx = idx.min(self.counts.len() - 1);
            self.counts[idx] += 1;
        }
    }

    /// Number of bins.
    pub fn bins(&self) -> usize {
        self.counts.len()
    }

    /// Bin width.
    pub fn bin_width(&self) -> f64 {
        (self.hi - self.lo) / self.counts.len() as f64
    }

    /// Lower edge of the range.
    pub fn lo(&self) -> f64 {
        self.lo
    }

    /// Upper edge of the range.
    pub fn hi(&self) -> f64 {
        self.hi
    }

    /// Raw in-range bin counts.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Observations below range.
    pub fn underflow(&self) -> u64 {
        self.below
    }

    /// Observations at or above the upper edge.
    pub fn overflow(&self) -> u64 {
        self.above
    }

    /// Total observations pushed (including out of range).
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Center of bin `i`.
    pub fn bin_center(&self, i: usize) -> f64 {
        self.lo + (i as f64 + 0.5) * self.bin_width()
    }

    /// Probability density estimate: heights such that
    /// `sum(height * bin_width) = in-range mass / total`.
    pub fn density(&self) -> Vec<f64> {
        if self.total == 0 {
            return vec![0.0; self.counts.len()];
        }
        let norm = 1.0 / (self.total as f64 * self.bin_width());
        self.counts.iter().map(|&c| c as f64 * norm).collect()
    }

    /// `(bin_center, density)` pairs, the series the paper plots.
    pub fn density_series(&self) -> Vec<(f64, f64)> {
        self.density()
            .into_iter()
            .enumerate()
            .map(|(i, d)| (self.bin_center(i), d))
            .collect()
    }

    /// Fraction of in-range observations (relative frequency) per bin.
    pub fn frequencies(&self) -> Vec<f64> {
        if self.total == 0 {
            return vec![0.0; self.counts.len()];
        }
        self.counts
            .iter()
            .map(|&c| c as f64 / self.total as f64)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_validates() {
        assert!(Histogram::new(1.0, 1.0, 10).is_err());
        assert!(Histogram::new(0.0, 1.0, 0).is_err());
        assert!(Histogram::new(2.0, 1.0, 4).is_err());
    }

    #[test]
    fn counts_land_in_right_bins() {
        let mut h = Histogram::new(0.0, 10.0, 10).unwrap();
        for v in [0.5, 1.5, 1.7, 9.9] {
            h.push(v);
        }
        assert_eq!(h.counts()[0], 1);
        assert_eq!(h.counts()[1], 2);
        assert_eq!(h.counts()[9], 1);
        assert_eq!(h.total(), 4);
    }

    #[test]
    fn overflow_underflow_tracked() {
        let mut h = Histogram::new(0.0, 10.0, 5).unwrap();
        h.push(-1.0);
        h.push(10.0); // upper edge is exclusive
        h.push(11.0);
        h.push(5.0);
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.overflow(), 2);
        assert_eq!(h.counts().iter().sum::<u64>(), 1);
    }

    #[test]
    fn density_integrates_to_one() {
        let mut h = Histogram::new(0.0, 100.0, 25).unwrap();
        let mut rng = crate::rng::SplitMix64::new(42);
        for _ in 0..10_000 {
            h.push(rng.next_f64() * 100.0);
        }
        let mass: f64 = h.density().iter().map(|d| d * h.bin_width()).sum();
        assert!((mass - 1.0).abs() < 1e-9, "mass {mass}");
    }

    #[test]
    fn from_data_covers_all_values() {
        let data = [3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0];
        let h = Histogram::from_data(&data, 4).unwrap();
        assert_eq!(h.underflow(), 0);
        assert_eq!(h.overflow(), 0);
        assert_eq!(h.counts().iter().sum::<u64>(), data.len() as u64);
    }

    #[test]
    fn from_data_degenerate_range() {
        let h = Histogram::from_data(&[5.0, 5.0, 5.0], 3).unwrap();
        assert_eq!(h.counts().iter().sum::<u64>(), 3);
    }

    #[test]
    fn from_data_empty_errors() {
        assert!(Histogram::from_data(&[], 3).is_err());
        assert!(Histogram::from_data(&[f64::NAN], 3).is_err());
    }

    #[test]
    fn bin_centers_are_midpoints() {
        let h = Histogram::new(0.0, 10.0, 5).unwrap();
        assert!((h.bin_center(0) - 1.0).abs() < 1e-12);
        assert!((h.bin_center(4) - 9.0).abs() < 1e-12);
    }

    #[test]
    fn density_series_pairs_match() {
        let mut h = Histogram::new(0.0, 4.0, 4).unwrap();
        h.push(0.5);
        h.push(2.5);
        let series = h.density_series();
        assert_eq!(series.len(), 4);
        assert!(series[0].1 > 0.0);
        assert!(series[1].1 == 0.0);
    }
}
