//! Deterministic random number generation.
//!
//! The cluster simulator needs two flavours of randomness:
//!
//! 1. A fast sequential PRNG for workload generation ([`SplitMix64`]).
//! 2. A **stateless, counter-based** generator ([`CounterRng`]) so the
//!    power model can evaluate the sample for any `(job, node, minute)`
//!    coordinate on demand without storing a stream position. This is the
//!    trick that keeps the five-month, ~10⁸-node-minute telemetry
//!    re-derivable instead of materialized.
//!
//! Both are built on the SplitMix64 finalizer, which passes BigCrush when
//! used as a mixing function and is extremely cheap (3 xor-shift-multiply
//! rounds).

/// The SplitMix64 mixing function (Vigna, 2015).
///
/// Maps a 64-bit value to a well-scrambled 64-bit value. Used both as the
/// state update for [`SplitMix64`] and as the keyed hash behind
/// [`CounterRng`].
#[inline]
pub fn splitmix64_mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Mixes several words into one seed. Order-sensitive.
#[inline]
pub fn mix_words(words: &[u64]) -> u64 {
    let mut acc = 0x6A09_E667_F3BC_C909; // sqrt(2) fractional bits
    for &w in words {
        acc = splitmix64_mix(acc ^ w);
    }
    acc
}

/// A tiny, fast, sequential PRNG (SplitMix64).
///
/// Statistically strong enough for simulation workloads and far faster
/// than cryptographic generators. Deterministic for a given seed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed. Distinct seeds produce
    /// independent-looking streams.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Next raw 64-bit output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform sample in `[0, 1)`.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        // 53 high bits -> exactly representable dyadic rational in [0,1).
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, bound)`. `bound` must be non-zero.
    #[inline]
    pub fn next_bounded(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        // Lemire's multiply-shift rejection method.
        let mut x = self.next_u64();
        let mut m = (x as u128) * (bound as u128);
        let mut lo = m as u64;
        if lo < bound {
            let threshold = bound.wrapping_neg() % bound;
            while lo < threshold {
                x = self.next_u64();
                m = (x as u128) * (bound as u128);
                lo = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Standard normal sample (Box–Muller; one value per call, the
    /// antithetic twin is discarded to keep the generator stateless in
    /// distribution terms).
    #[inline]
    pub fn next_normal(&mut self) -> f64 {
        // Rejection-free Box-Muller. Guard u1 away from zero.
        let u1 = self.next_f64().max(f64::MIN_POSITIVE);
        let u2 = self.next_f64();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }

    /// Normal sample with the given mean and standard deviation.
    #[inline]
    pub fn next_normal_with(&mut self, mean: f64, std_dev: f64) -> f64 {
        mean + std_dev * self.next_normal()
    }

    /// Log-normal sample: `exp(N(mu, sigma))`.
    #[inline]
    pub fn next_lognormal(&mut self, mu: f64, sigma: f64) -> f64 {
        self.next_normal_with(mu, sigma).exp()
    }

    /// Exponential sample with the given rate (`lambda`).
    #[inline]
    pub fn next_exp(&mut self, rate: f64) -> f64 {
        debug_assert!(rate > 0.0);
        let u = (1.0 - self.next_f64()).max(f64::MIN_POSITIVE);
        -u.ln() / rate
    }

    /// Derives an independent child generator. Useful for giving each
    /// simulated entity (user, job) its own stream.
    pub fn fork(&mut self, tag: u64) -> SplitMix64 {
        SplitMix64::new(mix_words(&[self.next_u64(), tag]))
    }
}

/// Stateless counter-based generator: a keyed hash from coordinates to
/// uniform/normal variates.
///
/// `CounterRng` carries only a 64-bit key. Every draw is addressed by an
/// explicit counter, so the same `(key, counter)` pair always yields the
/// same variate regardless of evaluation order — the property the power
/// model relies on to re-derive any minute of telemetry on demand and in
/// parallel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CounterRng {
    key: u64,
}

impl CounterRng {
    /// Creates a generator with the given key.
    pub fn new(key: u64) -> Self {
        Self { key }
    }

    /// Derives a sub-keyed generator (e.g. per-job from a per-system key).
    #[inline]
    pub fn derive(&self, tag: u64) -> CounterRng {
        CounterRng {
            key: splitmix64_mix(self.key ^ tag.rotate_left(17)),
        }
    }

    /// Raw 64-bit output for a counter.
    #[inline]
    pub fn u64_at(&self, counter: u64) -> u64 {
        splitmix64_mix(self.key ^ splitmix64_mix(counter))
    }

    /// Uniform `[0, 1)` sample for a counter.
    #[inline]
    pub fn f64_at(&self, counter: u64) -> f64 {
        (self.u64_at(counter) >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform sample addressed by a 2-D coordinate.
    #[inline]
    pub fn f64_at2(&self, a: u64, b: u64) -> f64 {
        self.f64_at(a.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ b)
    }

    /// Standard normal sample for a counter (Box–Muller over two derived
    /// uniforms; fully deterministic per coordinate).
    #[inline]
    pub fn normal_at(&self, counter: u64) -> f64 {
        let u1 = self.f64_at(counter << 1).max(f64::MIN_POSITIVE);
        let u2 = self.f64_at((counter << 1) | 1);
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }

    /// Normal sample addressed by a 2-D coordinate.
    #[inline]
    pub fn normal_at2(&self, a: u64, b: u64) -> f64 {
        self.normal_at(a.wrapping_mul(0xD134_2543_DE82_EF95) ^ b)
    }

    /// Fills `out[i] = normal_at2(a, b0 + i)` for the whole slice.
    ///
    /// A strided batch of the per-coordinate draws: the values are
    /// bit-identical to calling [`normal_at2`](Self::normal_at2) once
    /// per element, but the single tight loop amortizes call overhead
    /// and keeps the mixing state in registers — the form the columnar
    /// power kernel uses to fill a whole noise row per (job, node).
    #[inline]
    pub fn fill_normal2(&self, a: u64, b0: u64, out: &mut [f64]) {
        let lane = a.wrapping_mul(0xD134_2543_DE82_EF95);
        for (i, v) in out.iter_mut().enumerate() {
            *v = self.normal_at(lane ^ (b0 + i as u64));
        }
    }

    /// Fills `out[i] = f64_at2(a, b0 + i)` for the whole slice.
    ///
    /// Stride-filled uniforms, bit-identical to the per-coordinate
    /// [`f64_at2`](Self::f64_at2) calls (see [`fill_normal2`]).
    ///
    /// [`fill_normal2`]: Self::fill_normal2
    #[inline]
    pub fn fill_f64_at2(&self, a: u64, b0: u64, out: &mut [f64]) {
        let lane = a.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        for (i, v) in out.iter_mut().enumerate() {
            *v = self.f64_at(lane ^ (b0 + i as u64));
        }
    }
}

/// Alias-method sampler for discrete distributions (Walker/Vose).
///
/// Samples an index from an arbitrary weighted distribution in O(1) after
/// O(n) setup. Used by the workload generator to draw users, templates,
/// and application classes under heavy-tailed activity weights.
#[derive(Debug, Clone)]
pub struct AliasTable {
    prob: Vec<f64>,
    alias: Vec<u32>,
}

impl AliasTable {
    /// Builds an alias table from non-negative weights.
    ///
    /// Returns `None` if `weights` is empty, contains a negative or
    /// non-finite value, or sums to zero.
    pub fn new(weights: &[f64]) -> Option<Self> {
        if weights.is_empty() || weights.len() > u32::MAX as usize {
            return None;
        }
        let total: f64 = weights.iter().sum();
        if !total.is_finite() || total <= 0.0 || weights.iter().any(|&w| w.is_nan() || w < 0.0) {
            return None;
        }
        let n = weights.len();
        let scale = n as f64 / total;
        let mut prob: Vec<f64> = weights.iter().map(|&w| w * scale).collect();
        let mut alias = vec![0u32; n];
        let mut small: Vec<u32> = Vec::with_capacity(n);
        let mut large: Vec<u32> = Vec::with_capacity(n);
        for (i, &p) in prob.iter().enumerate() {
            if p < 1.0 {
                small.push(i as u32);
            } else {
                large.push(i as u32);
            }
        }
        while let (Some(&s), Some(&l)) = (small.last(), large.last()) {
            small.pop();
            alias[s as usize] = l;
            prob[l as usize] = (prob[l as usize] + prob[s as usize]) - 1.0;
            if prob[l as usize] < 1.0 {
                large.pop();
                small.push(l);
            }
        }
        // Remaining entries are 1.0 up to rounding.
        for &i in small.iter().chain(large.iter()) {
            prob[i as usize] = 1.0;
        }
        Some(Self { prob, alias })
    }

    /// Number of categories.
    pub fn len(&self) -> usize {
        self.prob.len()
    }

    /// Whether the table is empty (never true for a constructed table).
    pub fn is_empty(&self) -> bool {
        self.prob.is_empty()
    }

    /// Draws an index using the provided generator.
    #[inline]
    pub fn sample(&self, rng: &mut SplitMix64) -> usize {
        let i = rng.next_bounded(self.prob.len() as u64) as usize;
        if rng.next_f64() < self.prob[i] {
            i
        } else {
            self.alias[i] as usize
        }
    }
}

/// Zipf-like weights `w_i = 1 / (i + 1)^s` for `i in 0..n`.
///
/// The user-activity model uses these to reproduce the paper's finding
/// that ~20% of users account for ~85% of node-hours.
pub fn zipf_weights(n: usize, s: f64) -> Vec<f64> {
    (0..n).map(|i| 1.0 / ((i + 1) as f64).powf(s)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_is_deterministic() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn splitmix_f64_in_unit_interval() {
        let mut rng = SplitMix64::new(7);
        for _ in 0..10_000 {
            let x = rng.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn bounded_respects_bound() {
        let mut rng = SplitMix64::new(3);
        let mut seen = [false; 7];
        for _ in 0..10_000 {
            let v = rng.next_bounded(7) as usize;
            assert!(v < 7);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues should appear");
    }

    #[test]
    fn normal_moments_are_sane() {
        let mut rng = SplitMix64::new(11);
        let n = 200_000;
        let (mut sum, mut sum2) = (0.0, 0.0);
        for _ in 0..n {
            let x = rng.next_normal();
            sum += x;
            sum2 += x * x;
        }
        let mean = sum / n as f64;
        let var = sum2 / n as f64 - mean * mean;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.03, "var {var}");
    }

    #[test]
    fn exp_mean_matches_rate() {
        let mut rng = SplitMix64::new(5);
        let n = 100_000;
        let rate = 0.25;
        let mean: f64 = (0..n).map(|_| rng.next_exp(rate)).sum::<f64>() / n as f64;
        assert!((mean - 4.0).abs() < 0.1, "mean {mean}");
    }

    #[test]
    fn counter_rng_is_order_independent() {
        let rng = CounterRng::new(99);
        let forward: Vec<f64> = (0..50).map(|i| rng.f64_at(i)).collect();
        // Draw in descending counter order, then reverse in place — the
        // eager collect is the point: draws must not depend on order.
        let mut backward: Vec<f64> = (0..50).rev().map(|i| rng.f64_at(i)).collect();
        backward.reverse();
        assert_eq!(forward, backward);
    }

    #[test]
    fn stride_fills_match_scalar_draws() {
        let rng = CounterRng::new(0xBEEF);
        let mut normals = vec![0.0; 97];
        let mut uniforms = vec![0.0; 97];
        rng.fill_normal2(0x434F_4D4D, 5, &mut normals);
        rng.fill_f64_at2(0x434F_4D4D, 5, &mut uniforms);
        for (i, (&n, &u)) in normals.iter().zip(&uniforms).enumerate() {
            let b = 5 + i as u64;
            assert_eq!(n, rng.normal_at2(0x434F_4D4D, b), "normal at {b}");
            assert_eq!(u, rng.f64_at2(0x434F_4D4D, b), "uniform at {b}");
        }
    }

    #[test]
    fn counter_rng_derive_changes_stream() {
        let rng = CounterRng::new(1);
        let child = rng.derive(2);
        assert_ne!(rng.u64_at(0), child.u64_at(0));
    }

    #[test]
    fn counter_normal_moments() {
        let rng = CounterRng::new(123);
        let n = 100_000u64;
        let (mut sum, mut sum2) = (0.0, 0.0);
        for i in 0..n {
            let x = rng.normal_at(i);
            sum += x;
            sum2 += x * x;
        }
        let mean = sum / n as f64;
        let var = sum2 / n as f64 - mean * mean;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.03, "var {var}");
    }

    #[test]
    fn alias_table_matches_weights() {
        let weights = [1.0, 2.0, 4.0, 8.0];
        let table = AliasTable::new(&weights).unwrap();
        let mut rng = SplitMix64::new(17);
        let mut counts = [0usize; 4];
        let n = 150_000;
        for _ in 0..n {
            counts[table.sample(&mut rng)] += 1;
        }
        let total: f64 = weights.iter().sum();
        for (i, &w) in weights.iter().enumerate() {
            let expected = w / total;
            let observed = counts[i] as f64 / n as f64;
            assert!(
                (observed - expected).abs() < 0.01,
                "category {i}: observed {observed}, expected {expected}"
            );
        }
    }

    #[test]
    fn alias_table_rejects_bad_input() {
        assert!(AliasTable::new(&[]).is_none());
        assert!(AliasTable::new(&[0.0, 0.0]).is_none());
        assert!(AliasTable::new(&[1.0, -1.0]).is_none());
        assert!(AliasTable::new(&[f64::NAN]).is_none());
    }

    #[test]
    fn zipf_weights_decay() {
        let w = zipf_weights(10, 1.2);
        for pair in w.windows(2) {
            assert!(pair[0] > pair[1]);
        }
    }

    #[test]
    fn fork_streams_diverge() {
        let mut parent = SplitMix64::new(1);
        let mut a = parent.fork(1);
        let mut b = parent.fork(2);
        let same = (0..32).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }
}
