//! Concentration analysis: Lorenz curves, Gini coefficients, top shares.
//!
//! Fig. 11 of the paper shows that ~20% of users consume ~85% of
//! node-hours and energy, and that the two top-20% sets overlap by ~90%.
//! [`Lorenz`] computes the cumulative-share curve behind such plots, plus
//! the top-k share and set-overlap statistics.

use serde::{Deserialize, Serialize};

use crate::{Result, StatsError};

/// A Lorenz-style concentration curve over non-negative contributions.
///
/// Contributions are sorted in **descending** order (the paper plots
/// "top X% of users consume Y%"), so `cumulative_share(0.2)` answers
/// "what fraction do the top 20% account for".
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Lorenz {
    /// Contributions sorted descending.
    sorted_desc: Vec<f64>,
    /// Prefix sums of `sorted_desc` (same length).
    prefix: Vec<f64>,
    total: f64,
}

impl Lorenz {
    /// Builds the curve from raw contributions (any order). Negative or
    /// non-finite values are rejected; an all-zero total is rejected.
    pub fn new(contributions: &[f64]) -> Result<Self> {
        if contributions.is_empty() {
            return Err(StatsError::NotEnoughSamples {
                required: 1,
                actual: 0,
            });
        }
        if contributions.iter().any(|v| !v.is_finite() || *v < 0.0) {
            return Err(StatsError::InvalidInput(
                "contributions must be finite and non-negative",
            ));
        }
        let mut sorted_desc = contributions.to_vec();
        sorted_desc.sort_by(|a, b| b.partial_cmp(a).expect("finite"));
        let total: f64 = sorted_desc.iter().sum();
        if total <= 0.0 {
            return Err(StatsError::InvalidInput("total contribution is zero"));
        }
        let mut prefix = Vec::with_capacity(sorted_desc.len());
        let mut acc = 0.0;
        for &v in &sorted_desc {
            acc += v;
            prefix.push(acc);
        }
        Ok(Self {
            sorted_desc,
            prefix,
            total,
        })
    }

    /// Number of contributors.
    pub fn len(&self) -> usize {
        self.sorted_desc.len()
    }

    /// Always false after construction.
    pub fn is_empty(&self) -> bool {
        self.sorted_desc.is_empty()
    }

    /// Share contributed by the top `fraction` of contributors
    /// (`fraction` in `[0, 1]`; linear interpolation between contributors).
    pub fn top_share(&self, fraction: f64) -> f64 {
        let fraction = fraction.clamp(0.0, 1.0);
        let n = self.len() as f64;
        let pos = fraction * n;
        if pos <= 0.0 {
            return 0.0;
        }
        let k = pos.floor() as usize;
        let frac = pos - k as f64;
        let mut share = if k == 0 { 0.0 } else { self.prefix[k - 1] };
        if frac > 0.0 && k < self.len() {
            share += self.sorted_desc[k] * frac;
        }
        share / self.total
    }

    /// The `(population_fraction, cumulative_share)` series, one point per
    /// contributor — the curve Fig. 11 plots.
    pub fn curve(&self) -> Vec<(f64, f64)> {
        let n = self.len() as f64;
        self.prefix
            .iter()
            .enumerate()
            .map(|(i, &p)| ((i + 1) as f64 / n, p / self.total))
            .collect()
    }

    /// Gini coefficient in `[0, 1)` (0 = perfect equality).
    pub fn gini(&self) -> f64 {
        // For the descending-ordered curve: G = 1 - 2 * AUC_asc where
        // AUC_asc is the area under the ascending Lorenz curve. Compute
        // directly from the ascending cumulative shares via the trapezoid
        // rule.
        let n = self.len() as f64;
        let mut asc = self.sorted_desc.clone();
        asc.reverse();
        let mut acc = 0.0;
        let mut area = 0.0;
        let mut prev_share = 0.0;
        for &v in &asc {
            acc += v;
            let share = acc / self.total;
            area += (prev_share + share) / 2.0 / n;
            prev_share = share;
        }
        (1.0 - 2.0 * area).clamp(0.0, 1.0)
    }

    /// Smallest population fraction whose contributions reach
    /// `target_share` of the total.
    pub fn fraction_for_share(&self, target_share: f64) -> f64 {
        let target = (target_share.clamp(0.0, 1.0)) * self.total;
        let idx = self.prefix.partition_point(|&p| p < target);
        ((idx + 1).min(self.len())) as f64 / self.len() as f64
    }
}

/// Overlap between the top-`fraction` index sets of two contribution
/// vectors (Jaccard-style, normalized by the top-set size).
///
/// Used for the paper's "about 90% of the top 20% node-hour users are also
/// top energy users" statistic. Both slices must be aligned (entry `i`
/// describes the same contributor).
pub fn top_set_overlap(a: &[f64], b: &[f64], fraction: f64) -> Result<f64> {
    if a.len() != b.len() {
        return Err(StatsError::LengthMismatch {
            left: a.len(),
            right: b.len(),
        });
    }
    if a.is_empty() {
        return Err(StatsError::NotEnoughSamples {
            required: 1,
            actual: 0,
        });
    }
    let k = ((a.len() as f64 * fraction).round() as usize).clamp(1, a.len());
    let top_indices = |vals: &[f64]| -> Vec<usize> {
        let mut idx: Vec<usize> = (0..vals.len()).collect();
        idx.sort_by(|&i, &j| vals[j].partial_cmp(&vals[i]).unwrap_or(std::cmp::Ordering::Equal));
        idx.truncate(k);
        idx
    };
    let ta = top_indices(a);
    let tb: std::collections::HashSet<usize> = top_indices(b).into_iter().collect();
    let common = ta.iter().filter(|i| tb.contains(i)).count();
    Ok(common as f64 / k as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_contributions() {
        let l = Lorenz::new(&[1.0; 10]).unwrap();
        assert!((l.top_share(0.2) - 0.2).abs() < 1e-12);
        assert!(l.gini() < 1e-12);
    }

    #[test]
    fn concentrated_contributions() {
        // One contributor holds 90%.
        let mut c = vec![90.0];
        c.extend(std::iter::repeat_n(10.0 / 9.0, 9));
        let l = Lorenz::new(&c).unwrap();
        assert!((l.top_share(0.1) - 0.9).abs() < 1e-9);
        assert!(l.gini() > 0.7);
    }

    #[test]
    fn top_share_is_monotone_and_bounded() {
        let c = [5.0, 1.0, 3.0, 8.0, 2.0, 13.0, 1.0];
        let l = Lorenz::new(&c).unwrap();
        let mut last = 0.0;
        for i in 0..=20 {
            let s = l.top_share(i as f64 / 20.0);
            assert!(s >= last - 1e-12);
            assert!((0.0..=1.0 + 1e-12).contains(&s));
            last = s;
        }
        assert!((l.top_share(1.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn curve_ends_at_one() {
        let l = Lorenz::new(&[3.0, 1.0, 2.0]).unwrap();
        let curve = l.curve();
        assert_eq!(curve.len(), 3);
        assert!((curve.last().unwrap().1 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn fraction_for_share_inverts_top_share() {
        let c = [50.0, 20.0, 10.0, 10.0, 5.0, 3.0, 1.0, 1.0];
        let l = Lorenz::new(&c).unwrap();
        // Top 1 of 8 (12.5%) already holds 50%.
        assert!((l.fraction_for_share(0.5) - 0.125).abs() < 1e-12);
    }

    #[test]
    fn rejects_bad_input() {
        assert!(Lorenz::new(&[]).is_err());
        assert!(Lorenz::new(&[-1.0, 2.0]).is_err());
        assert!(Lorenz::new(&[0.0, 0.0]).is_err());
        assert!(Lorenz::new(&[f64::INFINITY]).is_err());
    }

    #[test]
    fn overlap_identical_is_one() {
        let a = [9.0, 1.0, 5.0, 3.0, 7.0];
        let o = top_set_overlap(&a, &a, 0.4).unwrap();
        assert_eq!(o, 1.0);
    }

    #[test]
    fn overlap_disjoint_is_zero() {
        let a = [10.0, 9.0, 1.0, 1.0];
        let b = [1.0, 1.0, 10.0, 9.0];
        let o = top_set_overlap(&a, &b, 0.5).unwrap();
        assert_eq!(o, 0.0);
    }

    #[test]
    fn overlap_partial() {
        let a = [10.0, 9.0, 8.0, 1.0, 1.0, 1.0];
        let b = [10.0, 9.0, 1.0, 8.0, 1.0, 1.0];
        // Top half (3): a -> {0,1,2}, b -> {0,1,3}; overlap 2/3.
        let o = top_set_overlap(&a, &b, 0.5).unwrap();
        assert!((o - 2.0 / 3.0).abs() < 1e-12);
    }
}
