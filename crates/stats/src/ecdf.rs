//! Empirical cumulative distribution functions.
//!
//! Most of the paper's figures are CDFs (Figs. 7, 9, 12, 14, 15). An
//! [`Ecdf`] stores the sorted sample and evaluates `F(x)`, its inverse
//! (quantiles), and fixed-grid series for plotting.

use serde::{Deserialize, Serialize};

use crate::quantile::{quantile_sorted, sorted_clean};
use crate::{Result, StatsError};

/// Empirical CDF over a finite sample.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Ecdf {
    sorted: Vec<f64>,
}

impl Ecdf {
    /// Builds an ECDF from (possibly unsorted, possibly NaN-containing)
    /// values. NaNs are dropped. Errors if nothing remains.
    pub fn new(values: &[f64]) -> Result<Self> {
        let sorted = sorted_clean(values);
        if sorted.is_empty() {
            return Err(StatsError::NotEnoughSamples {
                required: 1,
                actual: 0,
            });
        }
        Ok(Self { sorted })
    }

    /// Sample size.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// Always false (construction rejects empty samples).
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// The sorted sample.
    pub fn sorted_values(&self) -> &[f64] {
        &self.sorted
    }

    /// `F(x)`: fraction of samples `<= x`.
    pub fn eval(&self, x: f64) -> f64 {
        // partition_point returns the count of elements <= x when the
        // predicate is `v <= x` over sorted data.
        let count = self.sorted.partition_point(|&v| v <= x);
        count as f64 / self.sorted.len() as f64
    }

    /// Inverse CDF (quantile), type-7 interpolation.
    pub fn quantile(&self, q: f64) -> Result<f64> {
        quantile_sorted(&self.sorted, q)
    }

    /// Mean of the sample.
    pub fn mean(&self) -> f64 {
        self.sorted.iter().sum::<f64>() / self.sorted.len() as f64
    }

    /// Minimum of the sample.
    pub fn min(&self) -> f64 {
        self.sorted[0]
    }

    /// Maximum of the sample.
    pub fn max(&self) -> f64 {
        *self.sorted.last().expect("non-empty")
    }

    /// Fraction of samples strictly below `x`.
    pub fn fraction_below(&self, x: f64) -> f64 {
        let count = self.sorted.partition_point(|&v| v < x);
        count as f64 / self.sorted.len() as f64
    }

    /// Fraction of samples `>= x`.
    pub fn fraction_at_least(&self, x: f64) -> f64 {
        1.0 - self.fraction_below(x)
    }

    /// `(x, F(x))` step series over the sample points — the exact CDF
    /// staircase. For large samples prefer [`Ecdf::series_grid`].
    pub fn series_steps(&self) -> Vec<(f64, f64)> {
        let n = self.sorted.len() as f64;
        self.sorted
            .iter()
            .enumerate()
            .map(|(i, &x)| (x, (i + 1) as f64 / n))
            .collect()
    }

    /// `(x, F(x))` evaluated on a uniform grid of `points` between min and
    /// max — the compact series used by the figure harnesses.
    pub fn series_grid(&self, points: usize) -> Vec<(f64, f64)> {
        let points = points.max(2);
        let lo = self.min();
        let hi = self.max();
        (0..points)
            .map(|i| {
                let x = lo + (hi - lo) * i as f64 / (points - 1) as f64;
                (x, self.eval(x))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eval_basic() {
        let e = Ecdf::new(&[1.0, 2.0, 3.0, 4.0]).unwrap();
        assert_eq!(e.eval(0.5), 0.0);
        assert_eq!(e.eval(1.0), 0.25);
        assert_eq!(e.eval(2.5), 0.5);
        assert_eq!(e.eval(4.0), 1.0);
        assert_eq!(e.eval(99.0), 1.0);
    }

    #[test]
    fn handles_duplicates() {
        let e = Ecdf::new(&[1.0, 1.0, 1.0, 2.0]).unwrap();
        assert_eq!(e.eval(1.0), 0.75);
        assert_eq!(e.fraction_below(1.0), 0.0);
        assert_eq!(e.fraction_at_least(1.0), 1.0);
    }

    #[test]
    fn rejects_empty() {
        assert!(Ecdf::new(&[]).is_err());
        assert!(Ecdf::new(&[f64::NAN]).is_err());
    }

    #[test]
    fn quantile_round_trip() {
        let data: Vec<f64> = (0..101).map(|i| i as f64).collect();
        let e = Ecdf::new(&data).unwrap();
        assert_eq!(e.quantile(0.5).unwrap(), 50.0);
        assert_eq!(e.quantile(0.9).unwrap(), 90.0);
    }

    #[test]
    fn eval_is_monotone() {
        let data: Vec<f64> = (0..100).map(|i| ((i * 73) % 97) as f64).collect();
        let e = Ecdf::new(&data).unwrap();
        let mut last = 0.0;
        for i in 0..200 {
            let f = e.eval(i as f64 / 2.0);
            assert!(f >= last);
            last = f;
        }
    }

    #[test]
    fn step_series_ends_at_one() {
        let e = Ecdf::new(&[3.0, 1.0, 2.0]).unwrap();
        let steps = e.series_steps();
        assert_eq!(steps.len(), 3);
        assert_eq!(steps.last().unwrap().1, 1.0);
    }

    #[test]
    fn grid_series_brackets_support() {
        let e = Ecdf::new(&[10.0, 20.0, 30.0]).unwrap();
        let grid = e.series_grid(5);
        assert_eq!(grid.len(), 5);
        assert_eq!(grid[0].0, 10.0);
        assert_eq!(grid[4].0, 30.0);
        assert_eq!(grid[4].1, 1.0);
    }
}
