//! Quantiles and order statistics.
//!
//! The job-level split analyses (Fig. 5) divide jobs at the *median*
//! runtime and *median* size; the prediction analysis reports error
//! percentiles. These helpers implement linear-interpolation quantiles
//! (type-7, the R/NumPy default) over sorted or unsorted data.

use crate::{Result, StatsError};

/// Returns a sorted copy of `values` with NaNs removed.
pub fn sorted_clean(values: &[f64]) -> Vec<f64> {
    let mut v: Vec<f64> = values.iter().copied().filter(|x| !x.is_nan()).collect();
    v.sort_by(|a, b| a.partial_cmp(b).expect("NaNs were filtered"));
    v
}

/// Quantile `q in [0, 1]` of **sorted** data, type-7 interpolation.
///
/// Panics in debug builds if the data is not sorted.
pub fn quantile_sorted(sorted: &[f64], q: f64) -> Result<f64> {
    if sorted.is_empty() {
        return Err(StatsError::NotEnoughSamples {
            required: 1,
            actual: 0,
        });
    }
    if !(0.0..=1.0).contains(&q) {
        return Err(StatsError::InvalidInput("quantile must be in [0, 1]"));
    }
    debug_assert!(
        sorted.windows(2).all(|w| w[0] <= w[1]),
        "quantile_sorted requires sorted input"
    );
    let n = sorted.len();
    if n == 1 {
        return Ok(sorted[0]);
    }
    let pos = q * (n - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = pos - lo as f64;
    Ok(sorted[lo] + (sorted[hi] - sorted[lo]) * frac)
}

/// Quantile of unsorted data (sorts a copy).
pub fn quantile(values: &[f64], q: f64) -> Result<f64> {
    let sorted = sorted_clean(values);
    quantile_sorted(&sorted, q)
}

/// Median of unsorted data.
pub fn median(values: &[f64]) -> Result<f64> {
    quantile(values, 0.5)
}

/// Several quantiles at once over one sorted copy; more efficient than
/// repeated [`quantile`] calls.
pub fn quantiles(values: &[f64], qs: &[f64]) -> Result<Vec<f64>> {
    let sorted = sorted_clean(values);
    qs.iter().map(|&q| quantile_sorted(&sorted, q)).collect()
}

/// Interquartile range (Q3 - Q1).
pub fn iqr(values: &[f64]) -> Result<f64> {
    let sorted = sorted_clean(values);
    Ok(quantile_sorted(&sorted, 0.75)? - quantile_sorted(&sorted, 0.25)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_odd_even() {
        assert_eq!(median(&[3.0, 1.0, 2.0]).unwrap(), 2.0);
        assert_eq!(median(&[4.0, 1.0, 3.0, 2.0]).unwrap(), 2.5);
    }

    #[test]
    fn quantile_endpoints() {
        let data = [5.0, 1.0, 9.0, 3.0];
        assert_eq!(quantile(&data, 0.0).unwrap(), 1.0);
        assert_eq!(quantile(&data, 1.0).unwrap(), 9.0);
    }

    #[test]
    fn quantile_interpolates() {
        // Sorted: [10, 20, 30, 40]; q=0.25 -> pos 0.75 -> 17.5.
        let data = [40.0, 10.0, 30.0, 20.0];
        assert!((quantile(&data, 0.25).unwrap() - 17.5).abs() < 1e-12);
    }

    #[test]
    fn quantile_single_value() {
        assert_eq!(quantile(&[7.0], 0.3).unwrap(), 7.0);
    }

    #[test]
    fn quantile_rejects_bad_input() {
        assert!(quantile(&[], 0.5).is_err());
        assert!(quantile(&[1.0], 1.5).is_err());
        assert!(quantile(&[1.0], -0.1).is_err());
    }

    #[test]
    fn nan_filtered() {
        assert_eq!(median(&[1.0, f64::NAN, 3.0]).unwrap(), 2.0);
    }

    #[test]
    fn iqr_known() {
        let data: Vec<f64> = (1..=9).map(|x| x as f64).collect();
        assert!((iqr(&data).unwrap() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn quantiles_batch_matches_individual() {
        let data: Vec<f64> = (0..100).map(|i| ((i * 37) % 100) as f64).collect();
        let qs = [0.1, 0.5, 0.9];
        let batch = quantiles(&data, &qs).unwrap();
        for (i, &q) in qs.iter().enumerate() {
            assert_eq!(batch[i], quantile(&data, q).unwrap());
        }
    }
}
