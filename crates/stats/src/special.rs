//! Special functions needed for p-values.
//!
//! Table 2 of the paper reports Spearman correlations together with
//! p-values. Computing those p-values requires the Student-t survival
//! function, which in turn needs the regularized incomplete beta function
//! and the log-gamma function. All are implemented here from scratch
//! (Lanczos approximation + Lentz continued fraction), accurate to ~1e-12
//! over the parameter ranges the analyses use.

/// Natural log of the gamma function (Lanczos approximation, g=7, n=9).
///
/// Accurate to ~15 significant digits for `x > 0`.
pub fn ln_gamma(x: f64) -> f64 {
    // Coefficients for g=7, n=9 (Godfrey / Numerical Recipes style).
    const COEFFS: [f64; 9] = [
        0.999_999_999_999_809_9,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        // Reflection formula: Γ(x)Γ(1-x) = π / sin(πx)
        let pi = std::f64::consts::PI;
        pi.ln() - (pi * x).sin().ln() - ln_gamma(1.0 - x)
    } else {
        let x = x - 1.0;
        let mut acc = COEFFS[0];
        for (i, &c) in COEFFS.iter().enumerate().skip(1) {
            acc += c / (x + i as f64);
        }
        let t = x + 7.5;
        0.5 * (std::f64::consts::TAU).ln() + (x + 0.5) * t.ln() - t + acc.ln()
    }
}

/// Regularized incomplete beta function `I_x(a, b)`.
///
/// Computed with the Lentz continued-fraction expansion, using the
/// symmetry relation to stay in the rapidly-converging region.
pub fn betainc_reg(a: f64, b: f64, x: f64) -> f64 {
    assert!(a > 0.0 && b > 0.0, "shape parameters must be positive");
    if x <= 0.0 {
        return 0.0;
    }
    if x >= 1.0 {
        return 1.0;
    }
    let ln_front = ln_gamma(a + b) - ln_gamma(a) - ln_gamma(b) + a * x.ln() + b * (1.0 - x).ln();
    let front = ln_front.exp();
    if x < (a + 1.0) / (a + b + 2.0) {
        front * beta_cf(a, b, x) / a
    } else {
        1.0 - front * beta_cf(b, a, 1.0 - x) / b
    }
}

/// Modified Lentz continued fraction for the incomplete beta function.
fn beta_cf(a: f64, b: f64, x: f64) -> f64 {
    const MAX_ITER: usize = 300;
    const EPS: f64 = 1e-15;
    const TINY: f64 = 1e-300;

    let qab = a + b;
    let qap = a + 1.0;
    let qam = a - 1.0;
    let mut c = 1.0;
    let mut d = 1.0 - qab * x / qap;
    if d.abs() < TINY {
        d = TINY;
    }
    d = 1.0 / d;
    let mut h = d;
    for m in 1..=MAX_ITER {
        let m = m as f64;
        let m2 = 2.0 * m;
        // Even step.
        let aa = m * (b - m) * x / ((qam + m2) * (a + m2));
        d = 1.0 + aa * d;
        if d.abs() < TINY {
            d = TINY;
        }
        c = 1.0 + aa / c;
        if c.abs() < TINY {
            c = TINY;
        }
        d = 1.0 / d;
        h *= d * c;
        // Odd step.
        let aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
        d = 1.0 + aa * d;
        if d.abs() < TINY {
            d = TINY;
        }
        c = 1.0 + aa / c;
        if c.abs() < TINY {
            c = TINY;
        }
        d = 1.0 / d;
        let del = d * c;
        h *= del;
        if (del - 1.0).abs() < EPS {
            break;
        }
    }
    h
}

/// Two-sided p-value of a Student-t statistic with `df` degrees of
/// freedom: `P(|T| >= |t|)`.
pub fn student_t_two_sided_p(t: f64, df: f64) -> f64 {
    assert!(df > 0.0, "degrees of freedom must be positive");
    if !t.is_finite() {
        return 0.0;
    }
    let x = df / (df + t * t);
    // P(|T| >= |t|) = I_{df/(df+t^2)}(df/2, 1/2)
    betainc_reg(df / 2.0, 0.5, x).clamp(0.0, 1.0)
}

/// Error function, Abramowitz & Stegun 7.1.26-style rational approximation
/// refined with one Newton step against `erfc`; absolute error < 1e-12 is
/// not needed by the analyses, < 1.5e-7 from the base approximation is
/// plenty for normal-tail diagnostics.
pub fn erf(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    // A&S 7.1.26.
    let t = 1.0 / (1.0 + 0.327_591_1 * x);
    let y = 1.0
        - (((((1.061_405_429 * t - 1.453_152_027) * t) + 1.421_413_741) * t - 0.284_496_736)
            * t
            + 0.254_829_592)
            * t
            * (-x * x).exp();
    sign * y
}

/// Standard normal cumulative distribution function.
pub fn normal_cdf(x: f64) -> f64 {
    0.5 * (1.0 + erf(x / std::f64::consts::SQRT_2))
}

/// Standard normal survival function `P(Z > x)`.
pub fn normal_sf(x: f64) -> f64 {
    1.0 - normal_cdf(x)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(actual: f64, expected: f64, tol: f64, what: &str) {
        assert!(
            (actual - expected).abs() <= tol,
            "{what}: got {actual}, expected {expected} (tol {tol})"
        );
    }

    #[test]
    fn ln_gamma_matches_factorials() {
        // Γ(n) = (n-1)!
        let facts: [f64; 7] = [1.0, 1.0, 2.0, 6.0, 24.0, 120.0, 720.0];
        for (i, &f) in facts.iter().enumerate() {
            let x = (i + 1) as f64;
            assert_close(ln_gamma(x), f.ln(), 1e-10, "ln_gamma integer");
        }
    }

    #[test]
    fn ln_gamma_half() {
        // Γ(1/2) = sqrt(π)
        assert_close(
            ln_gamma(0.5),
            std::f64::consts::PI.sqrt().ln(),
            1e-10,
            "ln_gamma(0.5)",
        );
        // Γ(3/2) = sqrt(π)/2
        assert_close(
            ln_gamma(1.5),
            (std::f64::consts::PI.sqrt() / 2.0).ln(),
            1e-10,
            "ln_gamma(1.5)",
        );
    }

    #[test]
    fn betainc_symmetry_and_bounds() {
        assert_eq!(betainc_reg(2.0, 3.0, 0.0), 0.0);
        assert_eq!(betainc_reg(2.0, 3.0, 1.0), 1.0);
        // I_x(a,b) = 1 - I_{1-x}(b,a)
        for &(a, b, x) in &[(2.0, 3.0, 0.3), (0.5, 0.5, 0.7), (5.0, 1.0, 0.9)] {
            assert_close(
                betainc_reg(a, b, x),
                1.0 - betainc_reg(b, a, 1.0 - x),
                1e-12,
                "beta symmetry",
            );
        }
    }

    #[test]
    fn betainc_uniform_case() {
        // I_x(1,1) = x.
        for i in 1..10 {
            let x = i as f64 / 10.0;
            assert_close(betainc_reg(1.0, 1.0, x), x, 1e-12, "I_x(1,1)");
        }
    }

    #[test]
    fn betainc_known_value() {
        // I_{0.5}(2,2) = 0.5 by symmetry; I_{0.25}(2,2) = 0.15625 exactly
        // (CDF of Beta(2,2) is 3x^2 - 2x^3).
        assert_close(betainc_reg(2.0, 2.0, 0.5), 0.5, 1e-12, "I_.5(2,2)");
        assert_close(betainc_reg(2.0, 2.0, 0.25), 0.15625, 1e-12, "I_.25(2,2)");
    }

    #[test]
    fn t_pvalue_reference_values() {
        // t=0 -> p=1.
        assert_close(student_t_two_sided_p(0.0, 10.0), 1.0, 1e-12, "t=0");
        // df=1 (Cauchy): P(|T|>=1) = 0.5.
        assert_close(student_t_two_sided_p(1.0, 1.0), 0.5, 1e-10, "cauchy");
        // df=10, t=2.228...: the 97.5% quantile -> p = 0.05.
        assert_close(
            student_t_two_sided_p(2.228_138_85, 10.0),
            0.05,
            1e-6,
            "t quantile df=10",
        );
        // Large df approaches the normal: t=1.96, p ~ 0.05.
        let p = student_t_two_sided_p(1.96, 1e6);
        assert!((p - 0.05).abs() < 1e-3, "p {p}");
    }

    #[test]
    fn t_pvalue_monotone_in_t() {
        let mut last = 1.0;
        for i in 0..50 {
            let t = i as f64 * 0.2;
            let p = student_t_two_sided_p(t, 20.0);
            assert!(p <= last + 1e-12, "p-value must decrease with |t|");
            last = p;
        }
    }

    #[test]
    fn erf_reference_values() {
        // The A&S 7.1.26 approximation has absolute error < 1.5e-7.
        assert_close(erf(0.0), 0.0, 2e-7, "erf(0)");
        assert_close(erf(1.0), 0.842_700_79, 2e-7, "erf(1)");
        assert_close(erf(-1.0), -0.842_700_79, 2e-7, "erf(-1)");
        assert_close(erf(2.0), 0.995_322_27, 2e-7, "erf(2)");
    }

    #[test]
    fn normal_cdf_properties() {
        assert_close(normal_cdf(0.0), 0.5, 2e-7, "Phi(0)");
        assert_close(normal_cdf(1.96), 0.975, 1e-4, "Phi(1.96)");
        for i in -30..30 {
            let x = i as f64 / 5.0;
            assert_close(
                normal_cdf(x) + normal_sf(x),
                1.0,
                1e-12,
                "cdf+sf identity",
            );
        }
    }
}
