//! Pearson and Spearman correlation with significance tests.
//!
//! Reproduces the machinery behind the paper's Table 2: Spearman rank
//! correlations between (job length, per-node power) and (job size,
//! per-node power), with p-values from the t-approximation
//! `t = r * sqrt((n-2) / (1-r^2))` against a Student-t with `n-2` degrees
//! of freedom.

use serde::{Deserialize, Serialize};

use crate::rank::average_ranks;
use crate::special::student_t_two_sided_p;
use crate::{Result, StatsError};

/// A correlation coefficient plus its two-sided p-value.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Correlation {
    /// The correlation coefficient in `[-1, 1]`.
    pub r: f64,
    /// Two-sided p-value for the null hypothesis of no correlation.
    pub p_value: f64,
    /// Number of paired observations used.
    pub n: usize,
}

fn validate(x: &[f64], y: &[f64]) -> Result<()> {
    if x.len() != y.len() {
        return Err(StatsError::LengthMismatch {
            left: x.len(),
            right: y.len(),
        });
    }
    if x.len() < 3 {
        return Err(StatsError::NotEnoughSamples {
            required: 3,
            actual: x.len(),
        });
    }
    Ok(())
}

fn pearson_r(x: &[f64], y: &[f64]) -> f64 {
    let n = x.len() as f64;
    let mx = x.iter().sum::<f64>() / n;
    let my = y.iter().sum::<f64>() / n;
    let mut sxy = 0.0;
    let mut sxx = 0.0;
    let mut syy = 0.0;
    for (&a, &b) in x.iter().zip(y) {
        let dx = a - mx;
        let dy = b - my;
        sxy += dx * dy;
        sxx += dx * dx;
        syy += dy * dy;
    }
    if sxx == 0.0 || syy == 0.0 {
        return f64::NAN;
    }
    (sxy / (sxx * syy).sqrt()).clamp(-1.0, 1.0)
}

fn t_test_p(r: f64, n: usize) -> f64 {
    if r.is_nan() {
        return f64::NAN;
    }
    if r.abs() >= 1.0 {
        return 0.0;
    }
    let df = (n - 2) as f64;
    let t = r * (df / (1.0 - r * r)).sqrt();
    student_t_two_sided_p(t, df)
}

/// Pearson product-moment correlation with a t-test p-value.
pub fn pearson(x: &[f64], y: &[f64]) -> Result<Correlation> {
    validate(x, y)?;
    let r = pearson_r(x, y);
    Ok(Correlation {
        r,
        p_value: t_test_p(r, x.len()),
        n: x.len(),
    })
}

/// Spearman rank correlation with a t-test p-value.
///
/// Ties are handled via average ranks, so this is the tie-corrected
/// coefficient (equivalent to Pearson over average ranks).
pub fn spearman(x: &[f64], y: &[f64]) -> Result<Correlation> {
    validate(x, y)?;
    let rx = average_ranks(x);
    let ry = average_ranks(y);
    let r = pearson_r(&rx, &ry);
    Ok(Correlation {
        r,
        p_value: t_test_p(r, x.len()),
        n: x.len(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SplitMix64;

    #[test]
    fn perfect_linear() {
        let x: Vec<f64> = (0..50).map(|i| i as f64).collect();
        let y: Vec<f64> = x.iter().map(|v| 3.0 * v + 2.0).collect();
        let c = pearson(&x, &y).unwrap();
        assert!((c.r - 1.0).abs() < 1e-12);
        assert!(c.p_value < 1e-12);
    }

    #[test]
    fn perfect_negative_monotone() {
        let x: Vec<f64> = (0..50).map(|i| i as f64).collect();
        let y: Vec<f64> = x.iter().map(|v| -(v.powi(3))).collect();
        let s = spearman(&x, &y).unwrap();
        assert!((s.r + 1.0).abs() < 1e-12, "r {}", s.r);
        // Pearson on a cubic is high but not exactly -1.
        let p = pearson(&x, &y).unwrap();
        assert!(p.r > -1.0 && p.r < -0.85);
    }

    #[test]
    fn spearman_invariant_to_monotone_transform() {
        let mut rng = SplitMix64::new(9);
        let x: Vec<f64> = (0..300).map(|_| rng.next_f64() * 10.0).collect();
        let y: Vec<f64> = (0..300).map(|_| rng.next_f64() * 10.0).collect();
        let base = spearman(&x, &y).unwrap().r;
        let x_exp: Vec<f64> = x.iter().map(|v| v.exp()).collect();
        let transformed = spearman(&x_exp, &y).unwrap().r;
        assert!((base - transformed).abs() < 1e-12);
    }

    #[test]
    fn independent_data_has_high_p() {
        let mut rng = SplitMix64::new(21);
        let x: Vec<f64> = (0..40).map(|_| rng.next_f64()).collect();
        let y: Vec<f64> = (0..40).map(|_| rng.next_f64()).collect();
        let c = spearman(&x, &y).unwrap();
        assert!(c.r.abs() < 0.5);
        assert!(c.p_value > 0.001, "p {}", c.p_value);
    }

    #[test]
    fn correlated_noise_detected() {
        let mut rng = SplitMix64::new(33);
        let x: Vec<f64> = (0..2000).map(|_| rng.next_f64()).collect();
        let y: Vec<f64> = x.iter().map(|&v| v + rng.next_normal() * 0.8).collect();
        let c = spearman(&x, &y).unwrap();
        assert!(c.r > 0.2, "r {}", c.r);
        assert!(c.p_value < 1e-6, "p {}", c.p_value);
    }

    #[test]
    fn handles_ties_reasonably() {
        // Heavily tied x (like node counts), monotone y.
        let x = [1.0, 1.0, 1.0, 2.0, 2.0, 4.0, 4.0, 8.0, 8.0, 8.0];
        let y: Vec<f64> = x.iter().enumerate().map(|(i, &v)| v * 10.0 + i as f64).collect();
        let c = spearman(&x, &y).unwrap();
        assert!(c.r > 0.9, "r {}", c.r);
    }

    #[test]
    fn constant_input_gives_nan() {
        let x = [1.0; 10];
        let y: Vec<f64> = (0..10).map(|i| i as f64).collect();
        let c = pearson(&x, &y).unwrap();
        assert!(c.r.is_nan());
    }

    #[test]
    fn validation_errors() {
        assert!(pearson(&[1.0, 2.0], &[1.0]).is_err());
        assert!(spearman(&[1.0, 2.0], &[1.0, 2.0]).is_err());
    }

    #[test]
    fn symmetry() {
        let x = [3.0, 1.0, 4.0, 1.0, 5.0, 9.0];
        let y = [2.0, 7.0, 1.0, 8.0, 2.0, 8.0];
        let a = spearman(&x, &y).unwrap();
        let b = spearman(&y, &x).unwrap();
        assert!((a.r - b.r).abs() < 1e-12);
    }
}
