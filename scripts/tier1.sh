#!/usr/bin/env sh
# Tier-1 gate: build, test, lint, observability smoke — fully offline,
# workspace-local shims. Run from the repo root: ./scripts/tier1.sh
set -eu
cd "$(dirname "$0")/.."

cargo build --release
cargo test -q
cargo clippy --all-targets -- -D warnings

# Observability smoke: a real CLI run with --metrics-out must emit a
# parseable metrics document containing the required span timings and
# counters.
SMOKE_DIR=$(mktemp -d)
trap 'rm -rf "$SMOKE_DIR"' EXIT
./target/release/hpcpower simulate --system emmy --seed 3 \
    --nodes 24 --days 2 --users 10 --quiet \
    --out "$SMOKE_DIR/trace" --metrics-out "$SMOKE_DIR/metrics.json"
if command -v python3 >/dev/null 2>&1; then
    python3 - "$SMOKE_DIR/metrics.json" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    m = json.load(f)
assert m["spans"]["simulate"]["total_ns"] > 0, "simulate span missing/zero"
for counter in ("sim.monitor.samples", "sim.jobs.placed", "sim.sched.backfill_hits"):
    assert counter in m["counters"], f"missing counter {counter}"
assert m["counters"]["sim.monitor.samples"] > 0, "no monitor samples recorded"
print("obs smoke: metrics JSON valid")
EOF
else
    # Fallback without python3: structural greps on the document.
    grep -q '"simulate"' "$SMOKE_DIR/metrics.json"
    grep -q '"sim.monitor.samples"' "$SMOKE_DIR/metrics.json"
    grep -q '"sim.sched.backfill_hits"' "$SMOKE_DIR/metrics.json"
    echo "obs smoke: metrics JSON contains required keys (python3 unavailable)"
fi
echo "tier1: OK"
