#!/usr/bin/env sh
# Tier-1 gate: build, test, lint, observability smoke — fully offline,
# workspace-local shims. Run from the repo root: ./scripts/tier1.sh
set -eu
cd "$(dirname "$0")/.."

# --workspace everywhere: the root umbrella package does not depend on
# hpcpower-cli, so a bare `cargo build --release` would leave a stale
# ./target/release/hpcpower for the smoke runs below.
cargo build --release --workspace
cargo test -q --workspace
cargo clippy --workspace --all-targets -- -D warnings

# Observability smoke: a real CLI run with --metrics-out must emit a
# parseable metrics document containing the required span timings and
# counters.
SMOKE_DIR=$(mktemp -d)
trap 'rm -rf "$SMOKE_DIR"' EXIT
./target/release/hpcpower simulate --system emmy --seed 3 \
    --nodes 24 --days 2 --users 10 --quiet \
    --out "$SMOKE_DIR/trace" --metrics-out "$SMOKE_DIR/metrics.json"
if command -v python3 >/dev/null 2>&1; then
    python3 - "$SMOKE_DIR/metrics.json" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    m = json.load(f)
assert m["spans"]["simulate"]["total_ns"] > 0, "simulate span missing/zero"
for counter in ("sim.monitor.samples", "sim.jobs.placed", "sim.sched.backfill_hits"):
    assert counter in m["counters"], f"missing counter {counter}"
assert m["counters"]["sim.monitor.samples"] > 0, "no monitor samples recorded"
print("obs smoke: metrics JSON valid")
EOF
else
    # Fallback without python3: structural greps on the document.
    grep -q '"simulate"' "$SMOKE_DIR/metrics.json"
    grep -q '"sim.monitor.samples"' "$SMOKE_DIR/metrics.json"
    grep -q '"sim.sched.backfill_hits"' "$SMOKE_DIR/metrics.json"
    echo "obs smoke: metrics JSON contains required keys (python3 unavailable)"
fi

# Fault-injection smoke: a dirty trace must round-trip through
# ingest-with-repair and then analyze cleanly, with a data-quality
# section in both the text and JSON reports.
./target/release/hpcpower simulate --system emmy --seed 5 \
    --nodes 16 --days 3 --users 8 --quiet --faults 0.05 \
    --out "$SMOKE_DIR/dirty" | grep -q 'faults injected:'
./target/release/hpcpower ingest --jobs "$SMOKE_DIR/dirty/jobs.csv" \
    --system "$SMOKE_DIR/dirty/system.csv" --nodes 16 --lenient \
    --repair-policy hold-last --out "$SMOKE_DIR/repaired" \
    | grep -q '0 after'
./target/release/hpcpower analyze --data "$SMOKE_DIR/repaired/dataset.json" \
    --splits 2 >/dev/null
./target/release/hpcpower analyze --data "$SMOKE_DIR/dirty/dataset.json" \
    --splits 2 --repair-policy drop-job --json \
    > "$SMOKE_DIR/quality-report.json"
if command -v python3 >/dev/null 2>&1; then
    python3 - "$SMOKE_DIR/quality-report.json" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    r = json.load(f)
q = r["data_quality"]
assert q is not None, "data_quality section missing"
assert q["violations_after"] == 0, "repair left violations"
assert q["policy"] == "DropJob", f"unexpected policy {q['policy']}"
print("fault smoke: repaired report JSON valid")
EOF
else
    grep -q '"data_quality"' "$SMOKE_DIR/quality-report.json"
    grep -q '"violations_after": 0' "$SMOKE_DIR/quality-report.json"
    echo "fault smoke: quality section present (python3 unavailable)"
fi
echo "tier1: OK"
