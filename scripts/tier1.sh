#!/usr/bin/env sh
# Tier-1 gate: build, test, lint, observability smoke — fully offline,
# workspace-local shims. Run from the repo root: ./scripts/tier1.sh
set -eu
cd "$(dirname "$0")/.."

# --workspace everywhere: the root umbrella package does not depend on
# hpcpower-cli, so a bare `cargo build --release` would leave a stale
# ./target/release/hpcpower for the smoke runs below.
cargo build --release --workspace
cargo test -q --workspace
cargo clippy --workspace --all-targets -- -D warnings \
    -D clippy::needless_collect -D clippy::redundant_clone
# The ingest engine is supposed to be zero-copy on the happy path: deny
# needless owned-string churn in the trace crate specifically.
cargo clippy -p hpcpower-trace --all-targets -- -D warnings \
    -D clippy::needless_collect -D clippy::redundant_clone \
    -D clippy::unnecessary_to_owned

# Observability smoke: a real CLI run with --metrics-out must emit a
# parseable metrics document containing the required span timings and
# counters.
SMOKE_DIR=$(mktemp -d)
trap 'rm -rf "$SMOKE_DIR"' EXIT
./target/release/hpcpower simulate --system emmy --seed 3 \
    --nodes 24 --days 2 --users 10 --quiet \
    --out "$SMOKE_DIR/trace" --metrics-out "$SMOKE_DIR/metrics.json"
if command -v python3 >/dev/null 2>&1; then
    python3 - "$SMOKE_DIR/metrics.json" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    m = json.load(f)
assert m["spans"]["simulate"]["total_ns"] > 0, "simulate span missing/zero"
for counter in ("sim.monitor.samples", "sim.jobs.placed", "sim.sched.backfill_hits"):
    assert counter in m["counters"], f"missing counter {counter}"
assert m["counters"]["sim.monitor.samples"] > 0, "no monitor samples recorded"
print("obs smoke: metrics JSON valid")
EOF
else
    # Fallback without python3: structural greps on the document.
    grep -q '"simulate"' "$SMOKE_DIR/metrics.json"
    grep -q '"sim.monitor.samples"' "$SMOKE_DIR/metrics.json"
    grep -q '"sim.sched.backfill_hits"' "$SMOKE_DIR/metrics.json"
    echo "obs smoke: metrics JSON contains required keys (python3 unavailable)"
fi

# Exporter smoke: the same run with --trace-out must emit a balanced
# Chrome trace, and --metrics-format prom a lint-clean Prometheus
# exposition.
./target/release/hpcpower simulate --system emmy --seed 3 \
    --nodes 24 --days 2 --users 10 --quiet \
    --out "$SMOKE_DIR/trace2" --trace-out "$SMOKE_DIR/trace.json" \
    --metrics-out "$SMOKE_DIR/metrics.prom" --metrics-format prom
cmp -s "$SMOKE_DIR/trace/dataset.json" "$SMOKE_DIR/trace2/dataset.json" \
    || { echo "obs smoke: exporters changed dataset bytes" >&2; exit 1; }
if command -v python3 >/dev/null 2>&1; then
    python3 - "$SMOKE_DIR/trace.json" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    t = json.load(f)
events = t["traceEvents"]
assert events, "empty trace"
stacks = {}
for e in events:
    assert e["ph"] in ("B", "E"), f"unexpected phase {e['ph']}"
    s = stacks.setdefault(e["tid"], [])
    if e["ph"] == "B":
        s.append(e["name"])
    else:
        assert s and s.pop() == e["name"], f"unbalanced E {e['name']}"
assert all(not s for s in stacks.values()), "spans left open"
assert t["metadata"]["events_unmatched"] == 0
print(f"obs smoke: chrome trace valid ({len(events)} events)")
EOF
else
    grep -q '"traceEvents"' "$SMOKE_DIR/trace.json"
    grep -q '"ph":"B"' "$SMOKE_DIR/trace.json"
    echo "obs smoke: chrome trace present (python3 unavailable)"
fi
grep -q '^# TYPE sim_jobs_placed_total counter$' "$SMOKE_DIR/metrics.prom"
grep -q '^# TYPE simulate_cmd_seconds summary$' "$SMOKE_DIR/metrics.prom"
echo "obs smoke: prometheus exposition present"

# Profiling smoke: --profile-out must leave the dataset byte-identical,
# emit a non-empty folded profile rooted at the simulate span, and a
# well-formed flamegraph SVG; `profile report` must read the result.
./target/release/hpcpower simulate --system emmy --seed 3 \
    --nodes 24 --days 2 --users 10 --quiet \
    --out "$SMOKE_DIR/trace3" --profile-out "$SMOKE_DIR/profile.folded"
cmp -s "$SMOKE_DIR/trace/dataset.json" "$SMOKE_DIR/trace3/dataset.json" \
    || { echo "profile smoke: profiling changed dataset bytes" >&2; exit 1; }
[ -s "$SMOKE_DIR/profile.folded" ] \
    || { echo "profile smoke: folded profile is empty" >&2; exit 1; }
grep -q '^simulate' "$SMOKE_DIR/profile.folded" \
    || { echo "profile smoke: folded stacks not rooted at simulate" >&2; exit 1; }
./target/release/hpcpower simulate --system emmy --seed 3 \
    --nodes 24 --days 2 --users 10 --quiet \
    --out "$SMOKE_DIR/trace4" --profile-out "$SMOKE_DIR/flame.svg"
if command -v python3 >/dev/null 2>&1; then
    python3 - "$SMOKE_DIR/flame.svg" <<'EOF'
import sys, xml.etree.ElementTree as ET
root = ET.parse(sys.argv[1]).getroot()
assert root.tag.endswith("svg"), f"root element is {root.tag}"
rects = root.iter("{http://www.w3.org/2000/svg}rect")
assert sum(1 for _ in rects) > 0, "flamegraph has no frames"
print("profile smoke: flamegraph SVG well-formed")
EOF
else
    grep -q '^<svg ' "$SMOKE_DIR/flame.svg"
    grep -q '</svg>' "$SMOKE_DIR/flame.svg"
    echo "profile smoke: flamegraph SVG present (python3 unavailable)"
fi
./target/release/hpcpower profile report --profile "$SMOKE_DIR/profile.folded" \
    --top 5 | grep -q 'simulate' \
    || { echo "profile smoke: report does not list the simulate path" >&2; exit 1; }
echo "profile smoke: folded + SVG + report OK"

# Live-telemetry smoke: re-render the collected document, lint it, then
# serve it on an ephemeral port and check /metrics is byte-for-byte the
# rendered exposition and /healthz answers.
./target/release/hpcpower obs render --metrics "$SMOKE_DIR/metrics.json" \
    --format prom > "$SMOKE_DIR/rendered.prom"
./target/release/hpcpower obs lint "$SMOKE_DIR/rendered.prom" >/dev/null
./target/release/hpcpower obs serve --metrics "$SMOKE_DIR/metrics.json" \
    --addr 127.0.0.1:0 --addr-file "$SMOKE_DIR/addr.txt" \
    --duration-s 30 --quiet &
SERVE_PID=$!
i=0
while [ ! -s "$SMOKE_DIR/addr.txt" ] && [ $i -lt 100 ]; do
    sleep 0.1; i=$((i + 1))
done
[ -s "$SMOKE_DIR/addr.txt" ] || { echo "obs serve never bound" >&2; exit 1; }
ADDR=$(cat "$SMOKE_DIR/addr.txt")
if command -v python3 >/dev/null 2>&1; then
    python3 - "$ADDR" "$SMOKE_DIR" <<'EOF'
import json, sys, urllib.request
addr, smoke = sys.argv[1], sys.argv[2]
body = urllib.request.urlopen(f"http://{addr}/metrics", timeout=10).read()
with open(f"{smoke}/served.prom", "wb") as f:
    f.write(body)
health = json.load(urllib.request.urlopen(f"http://{addr}/healthz", timeout=10))
assert health["status"] == "ok", health
urllib.request.urlopen(f"http://{addr}/quit", timeout=10).read()
print("serve smoke: /metrics and /healthz answered")
EOF
    cmp -s "$SMOKE_DIR/served.prom" "$SMOKE_DIR/rendered.prom" \
        || { echo "serve smoke: /metrics differs from obs render" >&2; exit 1; }
    wait "$SERVE_PID" || { echo "obs serve exited non-zero" >&2; exit 1; }
    echo "serve smoke: clean shutdown"
else
    kill "$SERVE_PID" 2>/dev/null || true
    wait "$SERVE_PID" 2>/dev/null || true
    echo "serve smoke: skipped endpoint fetch (python3 unavailable)"
fi

# Alert-rule smoke: a rule the run satisfies must exit 4, a quiet rule
# exits 0.
set +e
./target/release/hpcpower alerts eval --metrics "$SMOKE_DIR/metrics.json" \
    --alert 'placed:sim.jobs.placed>1@1' >/dev/null
rc=$?
set -e
[ "$rc" -eq 4 ] || { echo "alerts eval: expected exit 4, got $rc" >&2; exit 1; }
./target/release/hpcpower alerts eval --metrics "$SMOKE_DIR/metrics.json" \
    --alert 'quiet:sim.jobs.placed>999999999@1' >/dev/null \
    || { echo "alerts eval: quiet rule must exit 0" >&2; exit 1; }
echo "alerts smoke: exit codes 4/0 as specified"

# Criterion pipeline bench, quick mode: one shortened pass over the
# end-to-end benches so panics and API rot surface in CI without the
# full sampling budget. Timings printed here are not gate inputs.
CRITERION_QUICK=1 cargo bench -q -p hpcpower-bench --bench pipeline

# Perf-regression gate, warn-only: the committed history's runs come
# from different machines, so a slower CI box must not fail the build —
# but the diff itself has to parse the history and compute deltas.
# With no history yet, seed a baseline (small run) so the next pass has
# something to diff against; `bench diff` itself degrades to a clear
# "no baseline yet" message rather than failing.
if [ ! -f BENCH_pipeline.json ]; then
    echo "bench: no history, seeding a --small baseline"
    cargo run -q --release -p hpcpower-bench --bin pipeline -- --small
fi
./target/release/hpcpower bench diff --bench BENCH_pipeline.json \
    --fail-on-regress 20 \
    || echo "warning: bench diff reported a regression (soft gate, not failing)" >&2

# Fault-injection smoke: a dirty trace must round-trip through
# ingest-with-repair and then analyze cleanly, with a data-quality
# section in both the text and JSON reports.
./target/release/hpcpower simulate --system emmy --seed 5 \
    --nodes 16 --days 3 --users 8 --quiet --faults 0.05 \
    --out "$SMOKE_DIR/dirty" | grep -q 'faults injected:'
./target/release/hpcpower ingest --jobs "$SMOKE_DIR/dirty/jobs.csv" \
    --system "$SMOKE_DIR/dirty/system.csv" --nodes 16 --lenient \
    --repair-policy hold-last --out "$SMOKE_DIR/repaired" \
    | grep -q '0 after'
./target/release/hpcpower analyze --data "$SMOKE_DIR/repaired/dataset.json" \
    --splits 2 >/dev/null
./target/release/hpcpower analyze --data "$SMOKE_DIR/dirty/dataset.json" \
    --splits 2 --repair-policy drop-job --json \
    > "$SMOKE_DIR/quality-report.json"
if command -v python3 >/dev/null 2>&1; then
    python3 - "$SMOKE_DIR/quality-report.json" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    r = json.load(f)
q = r["data_quality"]
assert q is not None, "data_quality section missing"
assert q["violations_after"] == 0, "repair left violations"
assert q["policy"] == "DropJob", f"unexpected policy {q['policy']}"
print("fault smoke: repaired report JSON valid")
EOF
else
    grep -q '"data_quality"' "$SMOKE_DIR/quality-report.json"
    grep -q '"violations_after": 0' "$SMOKE_DIR/quality-report.json"
    echo "fault smoke: quality section present (python3 unavailable)"
fi
# Parallel-ingest determinism smoke: the chunked engine must produce
# byte-identical outputs at any thread count — dataset, quality report,
# and the quarantine diagnostics — including on the dirty fixture where
# rows actually quarantine.
./target/release/hpcpower ingest --jobs "$SMOKE_DIR/dirty/jobs.csv" \
    --system "$SMOKE_DIR/dirty/system.csv" --nodes 16 --lenient \
    --repair-policy hold-last --threads 1 \
    --out "$SMOKE_DIR/ingest-t1" > "$SMOKE_DIR/ingest-t1.out" 2>&1
./target/release/hpcpower ingest --jobs "$SMOKE_DIR/dirty/jobs.csv" \
    --system "$SMOKE_DIR/dirty/system.csv" --nodes 16 --lenient \
    --repair-policy hold-last --threads 4 \
    --out "$SMOKE_DIR/ingest-t4" > "$SMOKE_DIR/ingest-t4.out" 2>&1
cmp -s "$SMOKE_DIR/ingest-t1/dataset.json" "$SMOKE_DIR/ingest-t4/dataset.json" \
    || { echo "ingest smoke: dataset differs across thread counts" >&2; exit 1; }
cmp -s "$SMOKE_DIR/ingest-t1/quality.json" "$SMOKE_DIR/ingest-t4/quality.json" \
    || { echo "ingest smoke: quality report differs across thread counts" >&2; exit 1; }
cmp -s "$SMOKE_DIR/ingest-t1.out" "$SMOKE_DIR/ingest-t4.out" \
    || { echo "ingest smoke: diagnostics differ across thread counts" >&2; exit 1; }
echo "ingest smoke: threads 1 vs 4 byte-identical"

# Crash-recovery smoke: SIGKILL a checkpointed simulate right after a
# chunk commit (deterministic chaos hook), resume it at a different
# thread count, and require the dataset to be byte-identical to an
# uninterrupted baseline. This is a hard gate: resume identity is the
# checkpoint layer's whole contract.
./target/release/hpcpower simulate --system emmy --seed 7 --nodes 24 \
    --days 2 --users 16 --quiet --threads 2 --out "$SMOKE_DIR/ckpt-base"
set +e
./target/release/hpcpower simulate --system emmy --seed 7 --nodes 24 \
    --days 2 --users 16 --quiet --threads 2 \
    --checkpoint-dir "$SMOKE_DIR/ckpt-run" --chunk-jobs 8 \
    --chaos-kill-after-chunk 1 --out "$SMOKE_DIR/ckpt-victim" 2>/dev/null
rc=$?
set -e
[ "$rc" -ne 0 ] || { echo "resume smoke: victim survived the SIGKILL hook" >&2; exit 1; }
./target/release/hpcpower simulate --resume "$SMOKE_DIR/ckpt-run" \
    --threads 4 --quiet --out "$SMOKE_DIR/ckpt-resumed"
cmp -s "$SMOKE_DIR/ckpt-base/dataset.json" "$SMOKE_DIR/ckpt-resumed/dataset.json" \
    || { echo "resume smoke: resumed dataset differs from the baseline" >&2; exit 1; }
echo "resume smoke: kill -> resume is byte-identical"

# Chaos matrix, warn-only: the full drill (kill, stall watchdog,
# enospc/short-write/fsync-fail injection) runs on every pass, but the
# stall scenario races a wall-clock timeout against a loaded CI box, so
# a failure warns instead of failing the build. The kill/resume
# invariant is already hard-gated above.
./target/release/hpcpower chaos run --dir "$SMOKE_DIR/chaos" \
    || echo "warning: chaos matrix reported a failure (soft gate, not failing)" >&2

echo "tier1: OK"
