#!/usr/bin/env sh
# Tier-1 gate: build, test, lint — fully offline, workspace-local shims.
# Run from the repo root: ./scripts/tier1.sh
set -eu
cd "$(dirname "$0")/.."

cargo build --release
cargo test -q
cargo clippy --all-targets -- -D warnings
echo "tier1: OK"
