//! Generate and export a dual-cluster power trace dataset in the layout
//! of the paper's Zenodo release: per-system `jobs.csv` (accounting +
//! power summary), `system.csv` (per-minute utilization/power), and a
//! full `dataset.json` including the instrumented per-node series.
//!
//! ```text
//! cargo run --release --example export_traces -- /tmp/hpc-power-traces
//! ```

use std::fs::File;
use std::io::BufWriter;
use std::path::PathBuf;

use hpcpower_sim::{simulate, SimConfig};
use hpcpower_trace::{csv, json, validate};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let out_dir: PathBuf = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "hpc-power-traces".to_string())
        .into();

    for cfg in [
        SimConfig::emmy_small(2020),
        SimConfig::meggie_small(2020),
    ] {
        let name = cfg.system.name.clone();
        eprintln!("simulating {name}...");
        let dataset = simulate(cfg);
        validate::validate(&dataset)?;

        let dir = out_dir.join(name.to_lowercase());
        std::fs::create_dir_all(&dir)?;

        {
            // Scoped so the buffered writers flush before the round-trip
            // read below.
            let mut jobs = BufWriter::new(File::create(dir.join("jobs.csv"))?);
            csv::write_jobs(&mut jobs, &dataset.jobs, &dataset.summaries)?;
            let mut system = BufWriter::new(File::create(dir.join("system.csv"))?);
            csv::write_system(&mut system, &dataset.system_series)?;
            json::save_dataset(&dir.join("dataset.json"), &dataset)?;
        }

        eprintln!(
            "  {}: {} jobs, {} system samples, {} instrumented series -> {}",
            name,
            dataset.len(),
            dataset.system_series.len(),
            dataset.instrumented.len(),
            dir.display()
        );

        // Round-trip check: what we wrote is what a consumer reads.
        let reread = json::load_dataset(&dir.join("dataset.json"))?;
        assert_eq!(reread.jobs, dataset.jobs, "JSON round trip must be lossless");
        let (jobs2, summaries2) = csv::read_jobs(std::io::BufReader::new(File::open(
            dir.join("jobs.csv"),
        )?))?;
        assert_eq!(jobs2.len(), dataset.jobs.len());
        assert_eq!(summaries2.len(), dataset.summaries.len());
    }
    println!("traces written to {}", out_dir.display());
    Ok(())
}
