//! End-to-end over-provisioning experiment: cap the facility's power at
//! 80% of the TDP envelope (below the observed Fig. 2 ceiling) and spend
//! the recovered budget on extra nodes, scheduled by the power-aware
//! EASY scheduler with BDT power reservations.
//!
//! ```text
//! cargo run --release --example overprovision
//! ```

use hpcpower::overprovision::{self, OverprovisionConfig};
use hpcpower::prediction::PredictionConfig;
use hpcpower_sim::SimConfig;

fn main() {
    let base = SimConfig::emmy(42).scaled_down(64, 10 * 1440, 40);
    let cfg = OverprovisionConfig::default();
    println!(
        "baseline: {} nodes, budget = {:.0}% of the TDP envelope, reservations at +{:.0}%\n",
        base.system.nodes,
        cfg.budget_fraction * 100.0,
        cfg.margin * 100.0
    );
    let analysis =
        overprovision::analyze(&base, &cfg, &PredictionConfig::default()).expect("experiment runs");
    println!("power budget: {:.1} kW", analysis.budget_w / 1000.0);
    println!("nodes | node-hours delivered | completed jobs | mean wait | p95 wait");
    for p in &analysis.points {
        println!(
            "{:>5} | {:>19.0}h | {:>14} | {:>7.0}min | {:>6.0}min",
            p.nodes, p.node_hours, p.completed_jobs, p.mean_wait_min, p.p95_wait_min
        );
    }
    println!(
        "\nbest throughput gain over the baseline machine: +{:.1}% node-hours\n\
         — the paper's 'more nodes for the same electricity bill' argument, quantified.",
        analysis.best_gain * 100.0
    );
}
