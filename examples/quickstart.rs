//! Quickstart: simulate a small Emmy-like cluster and print the headline
//! statistics of the paper's analyses.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use hpcpower::prelude::*;
use hpcpower_sim::{simulate, SimConfig};

fn main() {
    // A scaled-down, fully calibrated Emmy: 48 nodes, two weeks.
    // Deterministic for a given seed.
    let dataset = simulate(SimConfig::emmy_small(42));
    println!(
        "simulated {} jobs on {} ({} nodes, {} days)\n",
        dataset.len(),
        dataset.system.name,
        dataset.system.nodes,
        dataset.duration_min() / 1440
    );

    // RQ1/RQ2 — utilization vs power utilization (Figs. 1-2).
    let sys = system_level::analyze(&dataset);
    println!(
        "system utilization {:.0}%  |  power utilization {:.0}%  |  stranded power {:.0}%",
        sys.utilization.mean * 100.0,
        sys.power.mean * 100.0,
        sys.stranded_fraction * 100.0
    );

    // RQ3 — per-node power distribution (Fig. 3).
    let pdf = job_level::power_pdf(&dataset, 40).expect("jobs present");
    println!(
        "per-node power: {:.0} W +/- {:.0} W  ({:.0}% of the {} W node TDP)",
        pdf.mean_w,
        pdf.std_w,
        pdf.mean_tdp_fraction * 100.0,
        dataset.system.node_tdp_w
    );

    // Table 2 — what correlates with power?
    let corr = job_level::correlation_table(&dataset).expect("enough jobs");
    println!(
        "Spearman rho: runtime vs power {:.2}, size vs power {:.2}",
        corr.length_power.r, corr.size_power.r
    );

    // RQ5 — temporal flatness vs spatial spread (Figs. 7 and 9).
    let temporal = temporal::analyze(&dataset).expect("long jobs present");
    let spatial = spatial::analyze(&dataset).expect("multi-node jobs present");
    println!(
        "temporal: peak only {:.0}% above mean on average; {:.0}% of jobs never exceed +10%",
        temporal.overshoot.stats.mean * 100.0,
        temporal.frac_jobs_never_above * 100.0
    );
    println!(
        "spatial: nodes of the same job differ by {:.1} W on average ({:.0}% of job power)",
        spatial.spread_w.stats.mean,
        spatial.spread_fraction.stats.mean * 100.0
    );

    // RQ9 — apriori power prediction (Fig. 14).
    let cfg = hpcpower::prediction::PredictionConfig {
        n_splits: 3,
        ..Default::default()
    };
    let pred = prediction::analyze(&dataset, &cfg).expect("enough jobs");
    for m in &pred.models {
        println!(
            "{:<4}: {:.0}% of predictions within 10% of the actual per-node power",
            m.model,
            m.frac_below_10pct * 100.0
        );
    }
}
