//! Full characterization of one simulated system — every table and
//! figure of the paper rendered as text, for either cluster.
//!
//! ```text
//! cargo run --release --example characterize_cluster -- emmy
//! cargo run --release --example characterize_cluster -- meggie --seed 7
//! ```

use hpcpower::prediction::PredictionConfig;
use hpcpower::report;
use hpcpower_sim::{simulate, SimConfig};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let seed = args
        .iter()
        .position(|a| a == "--seed")
        .and_then(|i| args.get(i + 1))
        .and_then(|s| s.parse().ok())
        .unwrap_or(1u64);
    let which = args.get(1).map(String::as_str).unwrap_or("emmy");

    let cfg = match which {
        "meggie" => SimConfig::meggie(seed).scaled_down(96, 21 * 1440, 48),
        "emmy" => SimConfig::emmy(seed).scaled_down(96, 21 * 1440, 60),
        other => {
            eprintln!("unknown system {other:?}; use 'emmy' or 'meggie'");
            std::process::exit(2);
        }
    };
    eprintln!(
        "simulating {} ({} nodes, {} days, seed {seed})...",
        cfg.system.name,
        cfg.system.nodes,
        cfg.horizon_min / 1440
    );
    let dataset = simulate(cfg);
    let pred_cfg = PredictionConfig {
        n_splits: 5,
        ..Default::default()
    };
    print!("{}", report::render_full(&dataset, &pred_cfg));
}
