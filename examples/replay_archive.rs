//! Replay an SWF workload (the Parallel Workloads Archive format the
//! paper cites) through the calibrated power model — producing power
//! telemetry for accounting-only traces.
//!
//! With a path argument, replays that SWF file; without one, generates a
//! small synthetic SWF first (so the example is self-contained), writes
//! it to a temp file, and replays it.
//!
//! ```text
//! cargo run --release --example replay_archive [-- path/to/trace.swf]
//! ```

use std::io::BufReader;

use hpcpower::prelude::*;
use hpcpower_sim::replay::{replay_swf, ReplayConfig};
use hpcpower_sim::{simulate, SimConfig};
use hpcpower_trace::{swf, SystemSpec};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let path = std::env::args().nth(1);
    let swf_jobs = match path {
        Some(p) => {
            eprintln!("reading {p}...");
            swf::read_swf(BufReader::new(std::fs::File::open(&p)?))?
        }
        None => {
            // Self-contained: export a small simulated trace as SWF and
            // read it back — exactly what an archive consumer would do.
            eprintln!("no SWF given; generating a synthetic one...");
            let source = simulate(SimConfig::meggie_small(9));
            let mut buf = Vec::new();
            swf::write_swf(&mut buf, &source)?;
            swf::read_swf(BufReader::new(&buf[..]))?
        }
    };
    println!("SWF workload: {} jobs", swf_jobs.len());

    // Replay on an Emmy-flavoured 64-node machine.
    let cfg = ReplayConfig {
        system: SystemSpec::emmy().scaled(64),
        ..ReplayConfig::emmy_like(1)
    };
    let dataset = replay_swf(&swf_jobs, &cfg);
    hpcpower_trace::validate::validate(&dataset)?;
    println!(
        "replayed {} jobs on {} with the calibrated power overlay\n",
        dataset.len(),
        dataset.system.name
    );

    // The accounting-only trace now supports every power analysis.
    let pdf = job_level::power_pdf(&dataset, 30)?;
    println!(
        "per-node power: {:.0} W +/- {:.0} W ({:.0}% of TDP)",
        pdf.mean_w,
        pdf.std_w,
        pdf.mean_tdp_fraction * 100.0
    );
    let sys = system_level::analyze(&dataset);
    println!(
        "utilization {:.0}% | power utilization {:.0}% | stranded {:.0}%",
        sys.utilization.mean * 100.0,
        sys.power.mean * 100.0,
        sys.stranded_fraction * 100.0
    );
    if let Ok(t) = temporal::analyze(&dataset) {
        println!(
            "temporal: overshoot {:.0}%, {:.0}% of jobs never >10% above mean",
            t.overshoot.stats.mean * 100.0,
            t.frac_jobs_never_above * 100.0
        );
    }
    Ok(())
}
