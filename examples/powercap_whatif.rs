//! The Discussion-section what-if: prediction-driven static power caps.
//!
//! For a sweep of cap margins, report how many jobs would ever hit their
//! cap (degradation-risk proxy) and how much provisioned power the
//! facility recovers versus worst-case TDP provisioning — including the
//! overprovisioning head-room ("more nodes for the same power budget").
//!
//! ```text
//! cargo run --release --example powercap_whatif
//! ```

use hpcpower::powercap;
use hpcpower::prediction::PredictionConfig;
use hpcpower_sim::{simulate, SimConfig};

fn main() {
    for cfg in [SimConfig::emmy_small(3), SimConfig::meggie_small(3)] {
        let dataset = simulate(cfg);
        let analysis = powercap::analyze(
            &dataset,
            &powercap::default_margins(),
            &PredictionConfig {
                n_splits: 3,
                ..Default::default()
            },
        )
        .expect("enough jobs");

        println!(
            "{} — {} jobs, node TDP {} W",
            dataset.system.name,
            analysis.jobs,
            dataset.system.node_tdp_w
        );
        println!("  margin   jobs ever above cap   provisioned power saved");
        for o in &analysis.outcomes {
            println!(
                "  +{:<5.0}%  {:>19.1}%  {:>22.1}%",
                o.margin * 100.0,
                o.violation_rate * 100.0,
                o.provisioned_saving * 100.0
            );
        }
        println!(
            "  at the paper's +15% margin the recovered budget hosts ~{} extra nodes\n",
            analysis.extra_nodes_at_15pct
        );
    }
}
