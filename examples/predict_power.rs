//! Apriori job-power prediction, end to end: train the three models of
//! the paper on a simulated trace, compare them, then query the best one
//! interactively-style for a few hypothetical submissions.
//!
//! ```text
//! cargo run --release --example predict_power
//! ```

use hpcpower::prediction::{self, PredictionConfig};
use hpcpower_ml::{DecisionTree, Regressor, TreeConfig};
use hpcpower_sim::{simulate, SimConfig};

fn main() {
    let dataset = simulate(SimConfig::emmy_small(7));
    println!("trace: {} jobs from {} users\n", dataset.len(), dataset.user_count);

    // The paper's protocol: 10 random 80/20 splits, validation users
    // always covered in training.
    let cfg = PredictionConfig::default();
    let analysis = prediction::analyze(&dataset, &cfg).expect("enough jobs");
    println!("model  MAPE   <5% err  <10% err   (Fig. 14)");
    for m in &analysis.models {
        println!(
            "{:<5} {:>5.1}%  {:>6.1}%  {:>7.1}%",
            m.model,
            m.mape * 100.0,
            m.frac_below_5pct * 100.0,
            m.frac_below_10pct * 100.0
        );
    }
    println!(
        "\nBDT per-user quality: {:.0}% of users see <5% mean error (Fig. 15)\n",
        analysis.bdt_user_frac_below_5pct * 100.0
    );

    // Feature ablation: what does each feature buy?
    println!("feature ablation (BDT):");
    for row in prediction::feature_ablation(&dataset, &cfg).expect("enough jobs") {
        println!(
            "  {:<20} MAPE {:>5.1}%  <10% err {:>5.1}%",
            row.features.name(),
            row.mape * 100.0,
            row.frac_below_10pct * 100.0
        );
    }

    // Train a production model on everything and query it like a
    // scheduler plugin would at submission time.
    let data = prediction::build_ml_dataset(&dataset);
    let model = DecisionTree::fit(&data, TreeConfig::default()).expect("trainable");
    println!("\nsubmission-time queries (user, nodes, walltime -> predicted W/node):");
    for (user, nodes, walltime_h) in [(0u32, 4.0, 6.0), (0, 16.0, 12.0), (5, 1.0, 2.0)] {
        let w = model.predict(user, nodes, walltime_h * 60.0);
        println!(
            "  user-{user:<3} {nodes:>4.0} nodes  {walltime_h:>4.0} h  ->  {w:>6.1} W/node \
             (cap at +15%: {:.0} W)",
            w * 1.15
        );
    }
}
