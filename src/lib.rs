//! Umbrella crate re-exporting the HPC power suite; see README.
pub use hpcpower as analysis;
pub use hpcpower_ml as ml;
pub use hpcpower_sim as sim;
pub use hpcpower_stats as stats;
pub use hpcpower_trace as trace;
