//! Offline stand-in for the real `serde_json` crate, built on the
//! workspace's `serde` shim. Provides the handful of entry points the
//! workspace uses: `to_string`, `to_string_pretty`, `to_writer`,
//! `from_str`, `from_reader`, plus the [`Value`]/[`Error`] types.

pub use serde::json::{find, parse, Error, Value};

/// Serializes a value to compact JSON.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut w = serde::json::Writer::new(false);
    value.serialize_json(&mut w);
    Ok(w.into_string())
}

/// Serializes a value to two-space-indented JSON.
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut w = serde::json::Writer::new(true);
    value.serialize_json(&mut w);
    Ok(w.into_string())
}

/// Serializes a value as compact JSON into an `io::Write`.
pub fn to_writer<W: std::io::Write, T: serde::Serialize + ?Sized>(
    mut writer: W,
    value: &T,
) -> Result<(), Error> {
    let s = to_string(value)?;
    writer
        .write_all(s.as_bytes())
        .map_err(|e| Error::msg(format!("io error: {e}")))
}

/// Parses a value from a JSON string.
pub fn from_str<T: serde::Deserialize>(s: &str) -> Result<T, Error> {
    let value = serde::json::parse(s)?;
    T::deserialize_json(&value)
}

/// Parses a value from a JSON reader.
pub fn from_reader<R: std::io::Read, T: serde::Deserialize>(mut reader: R) -> Result<T, Error> {
    let mut buf = String::new();
    reader
        .read_to_string(&mut buf)
        .map_err(|e| Error::msg(format!("io error: {e}")))?;
    from_str(&buf)
}
