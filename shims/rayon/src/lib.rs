//! Offline stand-in for the real `rayon` crate.
//!
//! The workspace builds without registry access, so this shim provides
//! the subset of rayon the crates use, implemented eagerly on top of
//! `std::thread::scope`:
//!
//! * `into_par_iter()` on `Vec<T>` and integer ranges, `par_iter()` on
//!   slices;
//! * `map` / `filter_map` / `enumerate` / `for_each` / `collect` / `sum`
//!   on the resulting [`ParIter`];
//! * `ThreadPoolBuilder` → `ThreadPool::install` (a thread-local
//!   thread-count override) and `build_global`.
//!
//! Semantics deliberately mirror the properties the workspace's
//! determinism tests rely on: `map`/`filter_map` preserve input order
//! regardless of thread count, and `sum` reduces the ordered results
//! serially, so every parallel combinator here is a pure speedup with
//! byte-identical output at any thread count.

use std::cell::Cell;
use std::sync::atomic::{AtomicUsize, Ordering};

pub mod prelude;

thread_local! {
    /// Per-thread pool-size override installed by [`ThreadPool::install`].
    static POOL_THREADS: Cell<usize> = const { Cell::new(0) };
}

/// Pool size requested via [`ThreadPoolBuilder::build_global`]; 0 = unset.
static GLOBAL_THREADS: AtomicUsize = AtomicUsize::new(0);

fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// The thread count parallel combinators use on the current thread.
pub fn current_num_threads() -> usize {
    let tl = POOL_THREADS.with(Cell::get);
    if tl > 0 {
        return tl;
    }
    let global = GLOBAL_THREADS.load(Ordering::Relaxed);
    if global > 0 {
        return global;
    }
    default_threads()
}

/// Error type kept for API compatibility; building a pool cannot fail
/// in this shim.
#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Builder mirroring `rayon::ThreadPoolBuilder`.
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    /// Creates a builder with the default (all cores) size.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the pool size; 0 means all cores.
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    /// Builds a scoped pool handle.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        Ok(ThreadPool {
            threads: self.num_threads,
        })
    }

    /// Sets the process-wide default pool size.
    pub fn build_global(self) -> Result<(), ThreadPoolBuildError> {
        GLOBAL_THREADS.store(self.num_threads, Ordering::Relaxed);
        Ok(())
    }
}

/// A "pool" is just a thread-count policy: `install` makes parallel
/// combinators on the current thread use it for the closure's duration.
#[derive(Debug)]
pub struct ThreadPool {
    threads: usize,
}

impl ThreadPool {
    /// Runs `op` with this pool's thread count in effect.
    pub fn install<R>(&self, op: impl FnOnce() -> R) -> R {
        let prev = POOL_THREADS.with(|c| c.replace(self.threads));
        let result = op();
        POOL_THREADS.with(|c| c.set(prev));
        result
    }

    /// The effective size of this pool.
    pub fn current_num_threads(&self) -> usize {
        if self.threads == 0 {
            default_threads()
        } else {
            self.threads
        }
    }
}

/// Applies `f` to every item, in parallel, preserving input order.
fn par_apply<T, U, F>(items: Vec<T>, f: &F) -> Vec<U>
where
    T: Send,
    U: Send,
    F: Fn(T) -> U + Sync,
{
    par_apply_init(items, &|| (), &|(), item| f(item))
}

/// Like [`par_apply`], but each worker materializes one `init()` state
/// and threads it mutably through its whole contiguous chunk — the
/// `map_init` contract real rayon offers for per-worker scratch reuse.
fn par_apply_init<T, U, S, INIT, F>(items: Vec<T>, init: &INIT, f: &F) -> Vec<U>
where
    T: Send,
    U: Send,
    INIT: Fn() -> S + Sync,
    F: Fn(&mut S, T) -> U + Sync,
{
    let threads = current_num_threads().min(items.len());
    if threads <= 1 {
        let mut state = init();
        return items.into_iter().map(|item| f(&mut state, item)).collect();
    }
    // Contiguous chunks, one per worker; results concatenate in chunk
    // order so the output order equals the input order.
    let len = items.len();
    let base = len / threads;
    let extra = len % threads;
    let mut chunks: Vec<Vec<T>> = Vec::with_capacity(threads);
    let mut iter = items.into_iter();
    for i in 0..threads {
        let size = base + usize::from(i < extra);
        chunks.push(iter.by_ref().take(size).collect());
    }
    let mut results: Vec<Vec<U>> = Vec::with_capacity(threads);
    std::thread::scope(|scope| {
        let handles: Vec<_> = chunks
            .into_iter()
            .map(|chunk| {
                scope.spawn(move || {
                    let mut state = init();
                    chunk
                        .into_iter()
                        .map(|item| f(&mut state, item))
                        .collect::<Vec<U>>()
                })
            })
            .collect();
        for handle in handles {
            results.push(handle.join().expect("rayon shim worker panicked"));
        }
    });
    results.into_iter().flatten().collect()
}

/// An eager parallel iterator: combinators evaluate immediately and
/// preserve order.
pub struct ParIter<T> {
    items: Vec<T>,
}

impl<T: Send> ParIter<T> {
    /// Parallel, order-preserving map.
    pub fn map<U, F>(self, f: F) -> ParIter<U>
    where
        U: Send,
        F: Fn(T) -> U + Sync,
    {
        ParIter {
            items: par_apply(self.items, &f),
        }
    }

    /// Parallel, order-preserving map with per-worker state: each worker
    /// calls `init()` once and reuses the state across every item in its
    /// contiguous chunk, mirroring rayon's `map_init`.
    pub fn map_init<S, U, INIT, F>(self, init: INIT, f: F) -> ParIter<U>
    where
        U: Send,
        INIT: Fn() -> S + Sync,
        F: Fn(&mut S, T) -> U + Sync,
    {
        ParIter {
            items: par_apply_init(self.items, &init, &f),
        }
    }

    /// Parallel, order-preserving filter-map.
    pub fn filter_map<U, F>(self, f: F) -> ParIter<U>
    where
        U: Send,
        F: Fn(T) -> Option<U> + Sync,
    {
        ParIter {
            items: par_apply(self.items, &f).into_iter().flatten().collect(),
        }
    }

    /// Pairs each item with its index.
    pub fn enumerate(self) -> ParIter<(usize, T)> {
        ParIter {
            items: self.items.into_iter().enumerate().collect(),
        }
    }

    /// Parallel for-each (no result ordering to observe).
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(T) + Sync,
    {
        par_apply(self.items, &|item| f(item));
    }

    /// Collects the ordered results.
    pub fn collect<C: FromIterator<T>>(self) -> C {
        self.items.into_iter().collect()
    }

    /// Sums the ordered results serially — deterministic for floats.
    pub fn sum<S: std::iter::Sum<T>>(self) -> S {
        self.items.into_iter().sum()
    }

    /// Chunk-size hint; a no-op in this shim.
    pub fn with_min_len(self, _min: usize) -> Self {
        self
    }
}

/// Conversion into a [`ParIter`] by value.
pub trait IntoParallelIterator {
    /// Item type of the iterator.
    type Item: Send;
    /// Converts into an eager parallel iterator.
    fn into_par_iter(self) -> ParIter<Self::Item>;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    fn into_par_iter(self) -> ParIter<T> {
        ParIter { items: self }
    }
}

macro_rules! impl_range {
    ($($t:ty),*) => {$(
        impl IntoParallelIterator for std::ops::Range<$t> {
            type Item = $t;
            fn into_par_iter(self) -> ParIter<$t> {
                ParIter { items: self.collect() }
            }
        }
    )*};
}
impl_range!(u32, u64, usize, i32, i64);

/// `par_iter()` over a slice's references.
pub trait IntoParallelRefIterator<'a> {
    /// Reference item type.
    type Item: Send;
    /// Borrowing parallel iterator.
    fn par_iter(&'a self) -> ParIter<Self::Item>;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = &'a T;
    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = &'a T;
    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_preserves_order_across_thread_counts() {
        let serial: Vec<u64> = (0..1000u64).into_par_iter().map(|x| x * 3).collect();
        for threads in [1, 2, 3, 8] {
            let pool = ThreadPoolBuilder::new().num_threads(threads).build().unwrap();
            let parallel: Vec<u64> =
                pool.install(|| (0..1000u64).into_par_iter().map(|x| x * 3).collect());
            assert_eq!(serial, parallel, "threads={threads}");
        }
    }

    #[test]
    fn filter_map_preserves_order() {
        let pool = ThreadPoolBuilder::new().num_threads(4).build().unwrap();
        let out: Vec<u32> = pool.install(|| {
            (0..100u32)
                .into_par_iter()
                .filter_map(|x| (x % 3 == 0).then_some(x))
                .collect()
        });
        let expect: Vec<u32> = (0..100).filter(|x| x % 3 == 0).collect();
        assert_eq!(out, expect);
    }

    #[test]
    fn install_restores_previous_override() {
        let outer = ThreadPoolBuilder::new().num_threads(3).build().unwrap();
        let inner = ThreadPoolBuilder::new().num_threads(2).build().unwrap();
        outer.install(|| {
            assert_eq!(current_num_threads(), 3);
            inner.install(|| assert_eq!(current_num_threads(), 2));
            assert_eq!(current_num_threads(), 3);
        });
    }

    #[test]
    fn map_init_matches_map_and_reuses_state_per_worker() {
        let serial: Vec<u64> = (0..500u64).into_par_iter().map(|x| x * 7 + 1).collect();
        for threads in [1, 2, 4] {
            let pool = ThreadPoolBuilder::new().num_threads(threads).build().unwrap();
            let out: Vec<u64> = pool.install(|| {
                (0..500u64)
                    .into_par_iter()
                    .map_init(
                        || vec![0u64; 8],
                        |scratch, x| {
                            scratch[0] = x;
                            scratch[0] * 7 + 1
                        },
                    )
                    .collect()
            });
            assert_eq!(serial, out, "threads={threads}");
        }
        // At most one init() per worker chunk.
        use std::sync::atomic::AtomicUsize;
        let inits = AtomicUsize::new(0);
        let pool = ThreadPoolBuilder::new().num_threads(4).build().unwrap();
        let _: Vec<u64> = pool.install(|| {
            (0..100u64)
                .into_par_iter()
                .map_init(
                    || {
                        inits.fetch_add(1, Ordering::Relaxed);
                    },
                    |(), x| x,
                )
                .collect()
        });
        assert!(inits.load(Ordering::Relaxed) <= 4);
    }

    #[test]
    fn collect_into_result_short_circuits_shape() {
        let ok: Result<Vec<u32>, String> = (0..10u32)
            .into_par_iter()
            .map(|x| if x < 10 { Ok(x) } else { Err("no".to_string()) })
            .collect();
        assert_eq!(ok.unwrap().len(), 10);
    }
}
