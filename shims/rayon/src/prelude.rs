//! The traits user code imports with `use rayon::prelude::*;`.

pub use crate::{IntoParallelIterator, IntoParallelRefIterator, ParIter};
