//! Offline stand-in for the real `serde` crate.
//!
//! The container this workspace builds in has no access to a crates.io
//! mirror, so `serde` is provided as a local path crate via
//! `[patch.crates-io]`. It is deliberately *not* a generic
//! serializer-framework: the workspace only ever serializes to and from
//! JSON, so the two traits here speak the in-crate [`json`] data model
//! directly. The derive macros (re-exported from the sibling
//! `serde_derive` shim) generate impls against this surface, and the
//! `serde_json` shim provides the usual `to_string`/`from_str` entry
//! points on top.
//!
//! Determinism note: everything serializes in declaration/insertion
//! order, and unordered collections (`HashSet`) are sorted before
//! writing, so serializing the same value twice always produces
//! identical bytes — the property the workspace's determinism tests
//! rely on.

pub use serde_derive::{Deserialize, Serialize};

pub mod json;

/// A value that can write itself to a JSON [`json::Writer`].
pub trait Serialize {
    /// Appends `self` to the writer as one JSON value.
    fn serialize_json(&self, w: &mut json::Writer);
}

/// A value that can reconstruct itself from a parsed [`json::Value`].
pub trait Deserialize: Sized {
    /// Builds `Self` from a JSON value.
    fn deserialize_json(v: &json::Value) -> Result<Self, json::Error>;
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize_json(&self, w: &mut json::Writer) {
        (**self).serialize_json(w);
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn serialize_json(&self, w: &mut json::Writer) {
        (**self).serialize_json(w);
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn deserialize_json(v: &json::Value) -> Result<Self, json::Error> {
        T::deserialize_json(v).map(Box::new)
    }
}

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize_json(&self, w: &mut json::Writer) {
                w.write_u64(*self as u64);
            }
        }
        impl Deserialize for $t {
            fn deserialize_json(v: &json::Value) -> Result<Self, json::Error> {
                let u = v.as_u64().ok_or_else(|| {
                    json::Error::msg(format!("expected unsigned integer, found {}", v.kind()))
                })?;
                <$t>::try_from(u).map_err(|_| {
                    json::Error::msg(format!("{u} out of range for {}", stringify!($t)))
                })
            }
        }
    )*};
}
impl_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize_json(&self, w: &mut json::Writer) {
                w.write_i64(*self as i64);
            }
        }
        impl Deserialize for $t {
            fn deserialize_json(v: &json::Value) -> Result<Self, json::Error> {
                let i = v.as_i64().ok_or_else(|| {
                    json::Error::msg(format!("expected integer, found {}", v.kind()))
                })?;
                <$t>::try_from(i).map_err(|_| {
                    json::Error::msg(format!("{i} out of range for {}", stringify!($t)))
                })
            }
        }
    )*};
}
impl_signed!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn serialize_json(&self, w: &mut json::Writer) {
        w.write_f64(*self);
    }
}

impl Deserialize for f64 {
    fn deserialize_json(v: &json::Value) -> Result<Self, json::Error> {
        match v {
            // Non-finite floats serialize as JSON null; round them back
            // to NaN so summary structs survive a round trip.
            json::Value::Null => Ok(f64::NAN),
            _ => v
                .as_f64()
                .ok_or_else(|| json::Error::msg(format!("expected number, found {}", v.kind()))),
        }
    }
}

impl Serialize for f32 {
    fn serialize_json(&self, w: &mut json::Writer) {
        w.write_f64(*self as f64);
    }
}

impl Deserialize for f32 {
    fn deserialize_json(v: &json::Value) -> Result<Self, json::Error> {
        f64::deserialize_json(v).map(|x| x as f32)
    }
}

impl Serialize for bool {
    fn serialize_json(&self, w: &mut json::Writer) {
        w.write_bool(*self);
    }
}

impl Deserialize for bool {
    fn deserialize_json(v: &json::Value) -> Result<Self, json::Error> {
        v.as_bool()
            .ok_or_else(|| json::Error::msg(format!("expected bool, found {}", v.kind())))
    }
}

impl Serialize for str {
    fn serialize_json(&self, w: &mut json::Writer) {
        w.write_str(self);
    }
}

impl Serialize for String {
    fn serialize_json(&self, w: &mut json::Writer) {
        w.write_str(self);
    }
}

impl Deserialize for String {
    fn deserialize_json(v: &json::Value) -> Result<Self, json::Error> {
        v.as_str()
            .map(str::to_owned)
            .ok_or_else(|| json::Error::msg(format!("expected string, found {}", v.kind())))
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize_json(&self, w: &mut json::Writer) {
        w.begin_array();
        for item in self {
            item.serialize_json(w);
        }
        w.end_array();
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize_json(&self, w: &mut json::Writer) {
        self.as_slice().serialize_json(w);
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn deserialize_json(v: &json::Value) -> Result<Self, json::Error> {
        let items = Vec::<T>::deserialize_json(v)?;
        let got = items.len();
        items
            .try_into()
            .map_err(|_| json::Error::msg(format!("expected array of {N} elements, found {got}")))
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize_json(&self, w: &mut json::Writer) {
        self.as_slice().serialize_json(w);
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize_json(v: &json::Value) -> Result<Self, json::Error> {
        let items = v
            .as_array()
            .ok_or_else(|| json::Error::msg(format!("expected array, found {}", v.kind())))?;
        items.iter().map(T::deserialize_json).collect()
    }
}

impl<K, V> Serialize for std::collections::HashMap<K, V>
where
    K: std::fmt::Display + Ord + std::hash::Hash + Eq,
    V: Serialize,
{
    fn serialize_json(&self, w: &mut json::Writer) {
        let mut entries: Vec<(&K, &V)> = self.iter().collect();
        entries.sort_by(|a, b| a.0.cmp(b.0));
        w.begin_object();
        for (k, v) in entries {
            w.key(&k.to_string());
            v.serialize_json(w);
        }
        w.end_object();
    }
}

impl<K, V> Deserialize for std::collections::HashMap<K, V>
where
    K: std::str::FromStr + std::hash::Hash + Eq,
    V: Deserialize,
{
    fn deserialize_json(v: &json::Value) -> Result<Self, json::Error> {
        let entries = v
            .as_object()
            .ok_or_else(|| json::Error::msg(format!("expected object, found {}", v.kind())))?;
        entries
            .iter()
            .map(|(k, val)| {
                let key = k
                    .parse::<K>()
                    .map_err(|_| json::Error::msg(format!("invalid map key {k:?}")))?;
                Ok((key, V::deserialize_json(val)?))
            })
            .collect()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize_json(&self, w: &mut json::Writer) {
        match self {
            Some(x) => x.serialize_json(w),
            None => w.write_null(),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize_json(v: &json::Value) -> Result<Self, json::Error> {
        match v {
            json::Value::Null => Ok(None),
            other => T::deserialize_json(other).map(Some),
        }
    }
}

macro_rules! impl_tuple {
    ($len:literal; $($t:ident : $idx:tt),+) => {
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn serialize_json(&self, w: &mut json::Writer) {
                w.begin_array();
                $(self.$idx.serialize_json(w);)+
                w.end_array();
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn deserialize_json(v: &json::Value) -> Result<Self, json::Error> {
                let items = v.as_array().ok_or_else(|| {
                    json::Error::msg(format!("expected {}-tuple array, found {}", $len, v.kind()))
                })?;
                if items.len() != $len {
                    return Err(json::Error::msg(format!(
                        "expected array of length {}, found {}", $len, items.len()
                    )));
                }
                Ok(($($t::deserialize_json(&items[$idx])?,)+))
            }
        }
    };
}
impl_tuple!(2; A: 0, B: 1);
impl_tuple!(3; A: 0, B: 1, C: 2);
impl_tuple!(4; A: 0, B: 1, C: 2, D: 3);

impl<T> Serialize for std::collections::HashSet<T>
where
    T: Serialize + Ord,
{
    fn serialize_json(&self, w: &mut json::Writer) {
        // Sorted so identical sets always serialize to identical bytes.
        let mut items: Vec<&T> = self.iter().collect();
        items.sort();
        w.begin_array();
        for item in items {
            item.serialize_json(w);
        }
        w.end_array();
    }
}

impl<T> Deserialize for std::collections::HashSet<T>
where
    T: Deserialize + Eq + std::hash::Hash,
{
    fn deserialize_json(v: &json::Value) -> Result<Self, json::Error> {
        let items = v
            .as_array()
            .ok_or_else(|| json::Error::msg(format!("expected array, found {}", v.kind())))?;
        items.iter().map(T::deserialize_json).collect()
    }
}
