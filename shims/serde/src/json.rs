//! The JSON data model behind the serde shim: a [`Value`] tree, a
//! recursive-descent parser, and a deterministic [`Writer`].

use std::fmt;

/// A parsed JSON value. Integers are kept apart from floats so `u64`
/// round trips losslessly.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number with a decimal point or exponent.
    Num(f64),
    /// A negative integer.
    Int(i64),
    /// A non-negative integer.
    UInt(u64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Value>),
    /// An object, in source order.
    Object(Vec<(String, Value)>),
}

static NULL: Value = Value::Null;

impl Value {
    /// Human-readable kind, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Num(_) | Value::Int(_) | Value::UInt(_) => "number",
            Value::Str(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }

    /// The object entries, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(entries) => Some(entries),
            _ => None,
        }
    }

    /// The array items, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean, if this is a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Numeric value as `f64` (integers widen).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            Value::Int(i) => Some(*i as f64),
            Value::UInt(u) => Some(*u as f64),
            _ => None,
        }
    }

    /// Numeric value as `u64` if representable.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::UInt(u) => Some(*u),
            Value::Int(i) if *i >= 0 => Some(*i as u64),
            Value::Num(n) if n.fract() == 0.0 && *n >= 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// Numeric value as `i64` if representable.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            Value::UInt(u) if *u <= i64::MAX as u64 => Some(*u as i64),
            Value::Num(n) if n.fract() == 0.0 && *n >= i64::MIN as f64 && *n <= i64::MAX as f64 => {
                Some(*n as i64)
            }
            _ => None,
        }
    }

    /// Whether this is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }
}

/// Looks a key up in an object's entries.
pub fn find<'a>(obj: &'a [(String, Value)], key: &str) -> Option<&'a Value> {
    obj.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

/// Like [`find`], but missing keys resolve to `null` (which scalar
/// deserializers reject with a "found null" error and `Option` maps to
/// `None` — the behaviour derive-generated code relies on).
pub fn get<'a>(obj: &'a [(String, Value)], key: &str) -> &'a Value {
    find(obj, key).unwrap_or(&NULL)
}

impl crate::Serialize for Value {
    fn serialize_json(&self, w: &mut Writer) {
        match self {
            Value::Null => w.write_null(),
            Value::Bool(b) => w.write_bool(*b),
            Value::Num(n) => w.write_f64(*n),
            Value::Int(i) => w.write_i64(*i),
            Value::UInt(u) => w.write_u64(*u),
            Value::Str(s) => w.write_str(s),
            Value::Array(items) => {
                w.begin_array();
                for v in items {
                    v.serialize_json(w);
                }
                w.end_array();
            }
            Value::Object(entries) => {
                w.begin_object();
                for (k, v) in entries {
                    w.key(k);
                    v.serialize_json(w);
                }
                w.end_object();
            }
        }
    }
}

impl crate::Deserialize for Value {
    fn deserialize_json(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

/// A JSON (de)serialization error.
#[derive(Debug, Clone)]
pub struct Error {
    msg: String,
}

impl Error {
    /// Creates an error from a message.
    pub fn msg(msg: impl Into<String>) -> Self {
        Self { msg: msg.into() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error: {}", self.msg)
    }
}

impl std::error::Error for Error {}

// ---------------------------------------------------------------------------
// Writer

/// Streams JSON text with automatic comma/indent management.
///
/// Generated `Serialize` impls drive this with `begin_object`/`key`/
/// scalar-write calls; the writer tracks container nesting so the output
/// is always syntactically valid and byte-deterministic.
#[derive(Debug)]
pub struct Writer {
    out: String,
    pretty: bool,
    /// One entry per open container: whether it already holds a value.
    stack: Vec<bool>,
    after_key: bool,
}

impl Writer {
    /// Creates a writer; `pretty` enables two-space indentation.
    pub fn new(pretty: bool) -> Self {
        Self {
            out: String::new(),
            pretty,
            stack: Vec::new(),
            after_key: false,
        }
    }

    /// Finishes writing and returns the JSON text.
    pub fn into_string(self) -> String {
        self.out
    }

    fn newline_indent(&mut self) {
        self.out.push('\n');
        for _ in 0..self.stack.len() {
            self.out.push_str("  ");
        }
    }

    /// Comma/indent bookkeeping before a value or key is emitted.
    fn pre_value(&mut self) {
        if self.after_key {
            self.after_key = false;
            return;
        }
        if let Some(has_values) = self.stack.last_mut() {
            if *has_values {
                self.out.push(',');
            }
            *has_values = true;
            if self.pretty {
                self.newline_indent();
            }
        }
    }

    fn close(&mut self, delim: char) {
        let had_values = self.stack.pop().unwrap_or(false);
        if self.pretty && had_values {
            self.newline_indent();
        }
        self.out.push(delim);
    }

    /// Opens an object.
    pub fn begin_object(&mut self) {
        self.pre_value();
        self.out.push('{');
        self.stack.push(false);
    }

    /// Closes the innermost object.
    pub fn end_object(&mut self) {
        self.close('}');
    }

    /// Opens an array.
    pub fn begin_array(&mut self) {
        self.pre_value();
        self.out.push('[');
        self.stack.push(false);
    }

    /// Closes the innermost array.
    pub fn end_array(&mut self) {
        self.close(']');
    }

    /// Writes an object key; the next write supplies its value.
    pub fn key(&mut self, key: &str) {
        self.pre_value();
        write_escaped(&mut self.out, key);
        self.out.push(':');
        if self.pretty {
            self.out.push(' ');
        }
        self.after_key = true;
    }

    /// Writes `null`.
    pub fn write_null(&mut self) {
        self.pre_value();
        self.out.push_str("null");
    }

    /// Writes a bool.
    pub fn write_bool(&mut self, v: bool) {
        self.pre_value();
        self.out.push_str(if v { "true" } else { "false" });
    }

    /// Writes an unsigned integer.
    pub fn write_u64(&mut self, v: u64) {
        use fmt::Write;
        self.pre_value();
        write!(self.out, "{v}").expect("writing to String cannot fail");
    }

    /// Writes a signed integer.
    pub fn write_i64(&mut self, v: i64) {
        use fmt::Write;
        self.pre_value();
        write!(self.out, "{v}").expect("writing to String cannot fail");
    }

    /// Writes a float using Rust's shortest round-trip representation;
    /// non-finite values become `null` (matching serde_json).
    pub fn write_f64(&mut self, v: f64) {
        use fmt::Write;
        self.pre_value();
        if v.is_finite() {
            write!(self.out, "{v:?}").expect("writing to String cannot fail");
        } else {
            self.out.push_str("null");
        }
    }

    /// Writes an escaped string.
    pub fn write_str(&mut self, v: &str) {
        self.pre_value();
        write_escaped(&mut self.out, v);
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parser

/// Parses a complete JSON document.
pub fn parse(input: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::msg(format!(
            "trailing characters at byte {}",
            p.pos
        )));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::msg(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            Some(b) => Err(Error::msg(format!(
                "unexpected `{}` at byte {}",
                b as char, self.pos
            ))),
            None => Err(Error::msg("unexpected end of input")),
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                _ => return Err(Error::msg(format!("expected `,` or `}}` at byte {}", self.pos))),
            }
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error::msg(format!("expected `,` or `]` at byte {}", self.pos))),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err(Error::msg("unterminated string"));
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err(Error::msg("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| Error::msg("truncated \\u escape"))?;
                            self.pos += 4;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error::msg("invalid \\u escape"))?,
                                16,
                            )
                            .map_err(|_| Error::msg("invalid \\u escape"))?;
                            // Surrogate pairs are not produced by our writer;
                            // map lone surrogates to the replacement char.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        other => {
                            return Err(Error::msg(format!(
                                "invalid escape `\\{}`",
                                other as char
                            )))
                        }
                    }
                }
                _ => {
                    // Collect the full UTF-8 sequence starting at pos-1.
                    let start = self.pos - 1;
                    while self
                        .bytes
                        .get(self.pos)
                        .is_some_and(|&b| b & 0xC0 == 0x80)
                    {
                        self.pos += 1;
                    }
                    let s = std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| Error::msg("invalid UTF-8 in string"))?;
                    out.push_str(s);
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::msg("invalid number"))?;
        if !is_float {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::UInt(u));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Int(i));
            }
        }
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| Error::msg(format!("invalid number `{text}`")))
    }
}
