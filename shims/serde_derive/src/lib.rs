//! Offline stand-in for the real `serde_derive` proc-macro crate.
//!
//! The workspace builds in an environment with no registry access, so
//! `serde`/`serde_derive` are provided as local path crates via
//! `[patch.crates-io]`. This derive supports exactly the shapes the
//! workspace uses:
//!
//! * structs with named fields (honouring `#[serde(default)]` and
//!   `#[serde(skip)]` on fields),
//! * single-field tuple structs (always serialized transparently, as
//!   with `#[serde(transparent)]`),
//! * enums with unit variants (serialized as the variant name string),
//! * enums with struct variants (externally tagged:
//!   `{"Variant": {...fields...}}`).
//!
//! Anything else (generics, multi-field tuple structs, newtype enum
//! variants) panics at compile time with a clear message, which is the
//! signal to extend this shim.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Clone)]
struct Field {
    name: String,
    skip: bool,
    default: bool,
}

enum Shape {
    NamedStruct(Vec<Field>),
    Newtype,
    Enum(Vec<(String, Option<Vec<Field>>)>),
}

struct Item {
    name: String,
    shape: Shape,
}

/// Flags found in `#[serde(...)]` attributes.
#[derive(Default)]
struct SerdeFlags {
    skip: bool,
    default: bool,
    transparent: bool,
}

/// Skips attributes starting at `tokens[i]`, accumulating serde flags.
/// Returns the index of the first non-attribute token.
fn skip_attrs(tokens: &[TokenTree], mut i: usize, flags: &mut SerdeFlags) -> usize {
    while let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() != '#' {
            break;
        }
        if let Some(TokenTree::Group(g)) = tokens.get(i + 1) {
            let inner: Vec<TokenTree> = g.stream().into_iter().collect();
            if let Some(TokenTree::Ident(id)) = inner.first() {
                if id.to_string() == "serde" {
                    if let Some(TokenTree::Group(args)) = inner.get(1) {
                        for t in args.stream() {
                            if let TokenTree::Ident(word) = t {
                                match word.to_string().as_str() {
                                    "skip" => flags.skip = true,
                                    "default" => flags.default = true,
                                    "transparent" => flags.transparent = true,
                                    other => panic!(
                                        "serde_derive shim: unsupported serde attribute `{other}`"
                                    ),
                                }
                            }
                        }
                    }
                }
            }
            i += 2;
        } else {
            break;
        }
    }
    i
}

/// Skips an optional `pub` / `pub(...)` visibility qualifier.
fn skip_vis(tokens: &[TokenTree], mut i: usize) -> usize {
    if let Some(TokenTree::Ident(id)) = tokens.get(i) {
        if id.to_string() == "pub" {
            i += 1;
            if let Some(TokenTree::Group(g)) = tokens.get(i) {
                if g.delimiter() == Delimiter::Parenthesis {
                    i += 1;
                }
            }
        }
    }
    i
}

/// Parses the body of `{ ... }` as named fields.
fn parse_named_fields(stream: TokenStream) -> Vec<Field> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let mut flags = SerdeFlags::default();
        i = skip_attrs(&tokens, i, &mut flags);
        if i >= tokens.len() {
            break;
        }
        i = skip_vis(&tokens, i);
        let name = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("serde_derive shim: expected field name, found `{other}`"),
        };
        i += 1;
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == ':' => i += 1,
            other => panic!("serde_derive shim: expected `:` after `{name}`, found `{other}`"),
        }
        // Consume the type: everything until a comma at angle-bracket depth 0.
        let mut depth = 0i32;
        while i < tokens.len() {
            match &tokens[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
        fields.push(Field {
            name,
            skip: flags.skip,
            default: flags.default,
        });
    }
    fields
}

/// Counts fields of a tuple struct body `( ... )`.
fn count_tuple_fields(stream: TokenStream) -> usize {
    let mut depth = 0i32;
    let mut commas = 0usize;
    let mut any = false;
    let mut trailing_comma = false;
    for t in stream {
        any = true;
        match &t {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                commas += 1;
                trailing_comma = true;
                continue;
            }
            _ => {}
        }
        trailing_comma = false;
    }
    if !any {
        0
    } else {
        commas + 1 - usize::from(trailing_comma)
    }
}

fn parse_variants(stream: TokenStream) -> Vec<(String, Option<Vec<Field>>)> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let mut flags = SerdeFlags::default();
        i = skip_attrs(&tokens, i, &mut flags);
        if i >= tokens.len() {
            break;
        }
        let name = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("serde_derive shim: expected variant name, found `{other}`"),
        };
        i += 1;
        let fields = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let f = parse_named_fields(g.stream());
                i += 1;
                Some(f)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                panic!("serde_derive shim: newtype enum variant `{name}` is unsupported")
            }
            _ => None,
        };
        if let Some(TokenTree::Punct(p)) = tokens.get(i) {
            if p.as_char() == ',' {
                i += 1;
            }
        }
        variants.push((name, fields));
    }
    variants
}

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut flags = SerdeFlags::default();
    let mut i = skip_attrs(&tokens, 0, &mut flags);
    i = skip_vis(&tokens, i);
    let kind = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde_derive shim: expected `struct` or `enum`, found `{other}`"),
    };
    i += 1;
    let name = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde_derive shim: expected item name, found `{other}`"),
    };
    i += 1;
    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            panic!("serde_derive shim: generic item `{name}` is unsupported");
        }
    }
    let shape = match kind.as_str() {
        "struct" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::NamedStruct(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                match count_tuple_fields(g.stream()) {
                    1 => Shape::Newtype,
                    n => panic!(
                        "serde_derive shim: tuple struct `{name}` with {n} fields is unsupported"
                    ),
                }
            }
            _ => panic!("serde_derive shim: unit struct `{name}` is unsupported"),
        },
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::Enum(parse_variants(g.stream()))
            }
            _ => panic!("serde_derive shim: malformed enum `{name}`"),
        },
        other => panic!("serde_derive shim: cannot derive for `{other}` items"),
    };
    Item { name, shape }
}

fn wrap_impl(trait_body: String) -> TokenStream {
    format!("#[automatically_derived]\n#[allow(unused, clippy::all)]\n{trait_body}")
        .parse()
        .expect("serde_derive shim generated invalid Rust")
}

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let name = &item.name;
    let body = match &item.shape {
        Shape::Newtype => "::serde::Serialize::serialize_json(&self.0, w);".to_string(),
        Shape::NamedStruct(fields) => {
            let mut b = String::from("w.begin_object();");
            for f in fields.iter().filter(|f| !f.skip) {
                b.push_str(&format!(
                    "w.key(\"{n}\"); ::serde::Serialize::serialize_json(&self.{n}, w);",
                    n = f.name
                ));
            }
            b.push_str("w.end_object();");
            b
        }
        Shape::Enum(variants) => {
            let mut arms = String::new();
            for (v, fields) in variants {
                match fields {
                    None => arms.push_str(&format!("{name}::{v} => w.write_str(\"{v}\"),")),
                    Some(fs) => {
                        let pat: Vec<&str> = fs
                            .iter()
                            .filter(|f| !f.skip)
                            .map(|f| f.name.as_str())
                            .collect();
                        let mut inner = format!(
                            "w.begin_object(); w.key(\"{v}\"); w.begin_object();"
                        );
                        for n in &pat {
                            inner.push_str(&format!(
                                "w.key(\"{n}\"); ::serde::Serialize::serialize_json({n}, w);"
                            ));
                        }
                        inner.push_str("w.end_object(); w.end_object();");
                        arms.push_str(&format!(
                            "{name}::{v} {{ {fields_pat} .. }} => {{ {inner} }},",
                            fields_pat = pat
                                .iter()
                                .map(|n| format!("{n},"))
                                .collect::<String>()
                        ));
                    }
                }
            }
            format!("match self {{ {arms} }}")
        }
    };
    wrap_impl(format!(
        "impl ::serde::Serialize for {name} {{\n\
         fn serialize_json(&self, w: &mut ::serde::json::Writer) {{ {body} }}\n\
         }}"
    ))
}

fn named_fields_ctor(fields: &[Field], obj_expr: &str) -> String {
    let mut b = String::new();
    for f in fields {
        let n = &f.name;
        if f.skip {
            b.push_str(&format!("{n}: ::core::default::Default::default(),"));
        } else if f.default {
            b.push_str(&format!(
                "{n}: match ::serde::json::find({obj_expr}, \"{n}\") {{\
                 Some(x) => ::serde::Deserialize::deserialize_json(x)?,\
                 None => ::core::default::Default::default() }},"
            ));
        } else {
            b.push_str(&format!(
                "{n}: ::serde::Deserialize::deserialize_json(\
                 ::serde::json::get({obj_expr}, \"{n}\"))?,"
            ));
        }
    }
    b
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let name = &item.name;
    let body = match &item.shape {
        Shape::Newtype => format!(
            "::core::result::Result::Ok({name}(::serde::Deserialize::deserialize_json(v)?))"
        ),
        Shape::NamedStruct(fields) => format!(
            "let obj = v.as_object().ok_or_else(|| \
             ::serde::json::Error::msg(\"expected object for {name}\"))?;\
             ::core::result::Result::Ok({name} {{ {ctor} }})",
            ctor = named_fields_ctor(fields, "obj")
        ),
        Shape::Enum(variants) => {
            let unit: Vec<&(String, Option<Vec<Field>>)> =
                variants.iter().filter(|(_, f)| f.is_none()).collect();
            let structured: Vec<&(String, Option<Vec<Field>>)> =
                variants.iter().filter(|(_, f)| f.is_some()).collect();
            let mut b = String::new();
            if !unit.is_empty() {
                let mut arms = String::new();
                for (v, _) in &unit {
                    arms.push_str(&format!(
                        "\"{v}\" => return ::core::result::Result::Ok({name}::{v}),"
                    ));
                }
                b.push_str(&format!(
                    "if let Some(s) = v.as_str() {{ match s {{ {arms} other => return \
                     ::core::result::Result::Err(::serde::json::Error::msg(format!(\
                     \"unknown variant `{{other}}` for {name}\"))) }} }}"
                ));
            }
            if !structured.is_empty() {
                let mut arms = String::new();
                for (v, fields) in &structured {
                    let fs = fields.as_ref().expect("structured variant has fields");
                    arms.push_str(&format!(
                        "\"{v}\" => {{ let inner = val.as_object().ok_or_else(|| \
                         ::serde::json::Error::msg(\"expected object body for {name}::{v}\"))?;\
                         ::core::result::Result::Ok({name}::{v} {{ {ctor} }}) }},",
                        ctor = named_fields_ctor(fs, "inner")
                    ));
                }
                b.push_str(&format!(
                    "let obj = v.as_object().ok_or_else(|| \
                     ::serde::json::Error::msg(\"expected object for {name}\"))?;\
                     let (tag, val) = obj.first().ok_or_else(|| \
                     ::serde::json::Error::msg(\"empty enum object for {name}\"))?;\
                     match tag.as_str() {{ {arms} other => \
                     ::core::result::Result::Err(::serde::json::Error::msg(format!(\
                     \"unknown variant `{{other}}` for {name}\"))) }}"
                ));
            } else {
                b.push_str(&format!(
                    "::core::result::Result::Err(::serde::json::Error::msg(\
                     \"expected string variant for {name}\"))"
                ));
            }
            b
        }
    };
    wrap_impl(format!(
        "impl ::serde::Deserialize for {name} {{\n\
         fn deserialize_json(v: &::serde::json::Value) -> \
         ::core::result::Result<Self, ::serde::json::Error> {{ {body} }}\n\
         }}"
    ))
}
