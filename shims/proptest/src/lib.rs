//! Offline stand-in for the real `proptest` crate.
//!
//! Implements the slice of proptest the workspace's property tests use:
//! the `proptest!` macro (with an optional `#![proptest_config(...)]`
//! header), `prop_assert!`/`prop_assert_eq!`, range and tuple
//! strategies, `prop::collection::vec`, and `any::<T>()`.
//!
//! Cases are generated from a deterministic RNG seeded by the test's
//! file and name, so runs are reproducible; there is no shrinking —
//! a failing case panics with the case index and message.

pub mod collection;
pub mod strategy;
pub mod test_runner;

/// `prop::` namespace as re-exported by the prelude.
pub mod prop {
    pub use crate::collection;
}

/// Run-configuration for a `proptest!` block.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

/// A failed property case (carried out of the test body by
/// `prop_assert!`).
#[derive(Debug)]
pub struct TestCaseError {
    msg: String,
}

impl TestCaseError {
    /// Creates a failure with a message.
    pub fn fail(msg: impl Into<String>) -> Self {
        Self { msg: msg.into() }
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.msg)
    }
}

/// Strategy producing an arbitrary value of `T`.
pub struct Any<T>(std::marker::PhantomData<T>);

/// Builds the `any::<T>()` strategy.
pub fn any<T: ArbitraryValue>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// Types `any::<T>()` can generate.
pub trait ArbitraryValue {
    /// Draws an arbitrary value.
    fn arbitrary(rng: &mut test_runner::TestRng) -> Self;
}

impl ArbitraryValue for u64 {
    fn arbitrary(rng: &mut test_runner::TestRng) -> Self {
        rng.next_u64()
    }
}

impl ArbitraryValue for u32 {
    fn arbitrary(rng: &mut test_runner::TestRng) -> Self {
        rng.next_u64() as u32
    }
}

impl ArbitraryValue for bool {
    fn arbitrary(rng: &mut test_runner::TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl<T: ArbitraryValue> strategy::Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut test_runner::TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Everything a property-test file imports.
pub mod prelude {
    pub use crate::strategy::Strategy;
    pub use crate::{any, prop, ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, proptest};
}

/// Declares property tests. Each function body runs `cases` times with
/// fresh strategy-drawn bindings; `prop_assert!` failures abort the case.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { cfg = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { cfg = ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_fns {
    (cfg = ($cfg:expr); ) => {};
    (cfg = ($cfg:expr);
     $(#[$meta:meta])*
     fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::ProptestConfig = $cfg;
            let mut __rng = $crate::test_runner::TestRng::from_name(
                concat!(file!(), "::", stringify!($name)),
            );
            for __case in 0..__cfg.cases {
                let ($($arg,)*) = (
                    $($crate::strategy::Strategy::generate(&($strat), &mut __rng),)*
                );
                let __outcome: ::std::result::Result<(), $crate::TestCaseError> =
                    (|| { $body ::std::result::Result::Ok(()) })();
                if let ::std::result::Result::Err(e) = __outcome {
                    panic!(
                        "property {} failed at case {}/{}: {}",
                        stringify!($name), __case + 1, __cfg.cases, e
                    );
                }
            }
        }
        $crate::__proptest_fns! { cfg = ($cfg); $($rest)* }
    };
}

/// Asserts a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{:?} == {:?}` ({} == {})",
                l, r, stringify!($left), stringify!($right)
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "{}: `{:?} == {:?}`", format!($($fmt)+), l, r
            )));
        }
    }};
}
