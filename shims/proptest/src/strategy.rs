//! The [`Strategy`] trait and its implementations for ranges and tuples.

use crate::test_runner::TestRng;
use std::ops::Range;

/// Generates random values of an associated type.
pub trait Strategy {
    /// The generated type.
    type Value;
    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let width = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % width) as $t
            }
        }
    )*};
}
impl_int_range!(u8, u16, u32, u64, usize);

macro_rules! impl_signed_range {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let width = (self.end as i64 - self.start as i64) as u64;
                (self.start as i64 + (rng.next_u64() % width) as i64) as $t
            }
        }
    )*};
}
impl_signed_range!(i8, i16, i32, i64);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

impl Strategy for Range<f32> {
    type Value = f32;
    fn generate(&self, rng: &mut TestRng) -> f32 {
        self.start + rng.next_f64() as f32 * (self.end - self.start)
    }
}

macro_rules! impl_tuple_strategy {
    ($($t:ident : $idx:tt),+) => {
        impl<$($t: Strategy),+> Strategy for ($($t,)+) {
            type Value = ($($t::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A: 0, B: 1);
impl_tuple_strategy!(A: 0, B: 1, C: 2);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6);
