//! Collection strategies (`prop::collection::vec`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::ops::Range;

/// Strategy for vectors with element strategy `S` and a length range.
pub struct VecStrategy<S> {
    element: S,
    len: Range<usize>,
}

/// Builds a `Vec` strategy: lengths drawn from `len`, elements from
/// `element`.
pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
    VecStrategy { element, len }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let n = self.len.generate(rng);
        (0..n).map(|_| self.element.generate(rng)).collect()
    }
}
