//! Deterministic RNG for case generation.

/// SplitMix64 generator seeded from the test's name, so a property's
/// case sequence is stable across runs and machines.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds from an arbitrary name (e.g. `file!()::test_name`).
    pub fn from_name(name: &str) -> Self {
        // FNV-1a over the name gives a well-mixed 64-bit seed.
        let mut hash = 0xcbf29ce484222325u64;
        for b in name.bytes() {
            hash ^= b as u64;
            hash = hash.wrapping_mul(0x100000001b3);
        }
        Self { state: hash }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}
