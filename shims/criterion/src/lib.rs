//! Offline stand-in for the real `criterion` crate.
//!
//! Provides the API surface the workspace's benches use — `Criterion`,
//! `benchmark_group`, `Bencher::iter`, `Throughput`, `BenchmarkId`, and
//! the `criterion_group!`/`criterion_main!` macros — measuring simple
//! wall-clock time per iteration and printing one line per benchmark.
//! No statistical analysis, warm-up tuning, or HTML reports.

use std::time::{Duration, Instant};

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Runs a single benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher::new();
        f(&mut b);
        b.report(name);
        self
    }

    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            _criterion: self,
        }
    }
}

/// Measures one benchmark body.
#[derive(Debug)]
pub struct Bencher {
    total: Duration,
    iters: u64,
}

/// Iteration budget: keep each benchmark under roughly this much time.
/// `CRITERION_QUICK=1` (the shim's stand-in for real criterion's
/// `--quick` flag) shrinks it so CI can smoke-run every bench for
/// panics and API rot without paying full sampling time.
fn target_time() -> Duration {
    static QUICK: std::sync::OnceLock<bool> = std::sync::OnceLock::new();
    let quick = *QUICK.get_or_init(|| {
        std::env::var("CRITERION_QUICK").is_ok_and(|v| v != "0" && !v.is_empty())
    });
    if quick {
        Duration::from_millis(10)
    } else {
        Duration::from_millis(300)
    }
}

impl Bencher {
    fn new() -> Self {
        Self {
            total: Duration::ZERO,
            iters: 0,
        }
    }

    /// Times repeated runs of `f` until the time budget is spent.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let budget = target_time();
        // One untimed warm-up run.
        std::hint::black_box(f());
        let start = Instant::now();
        let mut iters = 0u64;
        loop {
            std::hint::black_box(f());
            iters += 1;
            if start.elapsed() >= budget || iters >= 10_000 {
                break;
            }
        }
        self.total = start.elapsed();
        self.iters = iters;
    }

    fn report(&self, name: &str) {
        if self.iters == 0 {
            eprintln!("bench {name}: no iterations recorded");
            return;
        }
        let per_iter = self.total / self.iters as u32;
        eprintln!("bench {name}: {per_iter:?}/iter ({} iters)", self.iters);
    }
}

/// Throughput annotation (recorded but not analyzed).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A parameterized benchmark identifier.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Identifier from a function name and parameter.
    pub fn new(name: &str, parameter: impl std::fmt::Display) -> Self {
        Self {
            id: format!("{name}/{parameter}"),
        }
    }

    /// Identifier from a parameter alone.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

/// A named group of related benchmarks.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    name: String,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sample-size hint; ignored by this shim.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Throughput annotation; recorded nowhere in this shim.
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    /// Runs a benchmark within the group.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher::new();
        f(&mut b);
        b.report(&format!("{}/{}", self.name, name));
        self
    }

    /// Runs a parameterized benchmark within the group.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher::new();
        f(&mut b, input);
        b.report(&format!("{}/{}", self.name, id.id));
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Declares a benchmark group function running each listed benchmark.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
