//! Calibration tests: the simulated clusters must land inside tolerance
//! bands around the paper's published statistics, figure by figure.
//!
//! Bands are deliberately generous (the test presets are scaled-down
//! versions of the 5-month clusters) but tight enough to catch any
//! regression that would flip a qualitative finding. EXPERIMENTS.md
//! records the full-scale numbers.

use hpcpower::prelude::*;
use hpcpower::prediction::PredictionConfig;
use hpcpower_sim::{simulate, SimConfig};
use hpcpower_trace::TraceDataset;

// Seed 13 is an ordinary, representative draw at this scaled-down size;
// population-level statistics (a few hundred templates) carry real
// sampling variance at test scale, so the bands below are wider than the
// full-scale numbers recorded in EXPERIMENTS.md.
fn emmy() -> TraceDataset {
    simulate(SimConfig::emmy(13).scaled_down(128, 28 * 1440, 90))
}

fn meggie() -> TraceDataset {
    simulate(SimConfig::meggie(13).scaled_down(160, 28 * 1440, 64))
}

fn assert_band(value: f64, lo: f64, hi: f64, what: &str) {
    assert!(
        (lo..=hi).contains(&value),
        "{what}: {value:.3} outside calibration band [{lo}, {hi}]"
    );
}

#[test]
fn fig1_fig2_system_and_power_utilization() {
    let (e, m) = (emmy(), meggie());
    let es = system_level::analyze(&e);
    let ms = system_level::analyze(&m);
    // Paper: Emmy 87% / Meggie 80% system utilization.
    assert_band(es.utilization.mean, 0.78, 0.95, "Emmy utilization");
    assert_band(ms.utilization.mean, 0.70, 0.90, "Meggie utilization");
    // Paper: Emmy 69% / Meggie 51% power utilization.
    assert_band(es.power.mean, 0.60, 0.76, "Emmy power utilization");
    assert_band(ms.power.mean, 0.45, 0.62, "Meggie power utilization");
    // The headline: >30% stranded power on both systems, and power
    // utilization always lags system utilization.
    assert!(es.stranded_fraction > 0.24, "Emmy stranded {}", es.stranded_fraction);
    assert!(ms.stranded_fraction > 0.34, "Meggie stranded {}", ms.stranded_fraction);
    assert!(es.power.mean < es.utilization.mean);
    assert!(ms.power.mean < ms.utilization.mean);
    // Emmy is the busier, more power-hungry system.
    assert!(es.power.mean > ms.power.mean);
}

#[test]
fn fig3_per_node_power_distribution() {
    let (e, m) = (emmy(), meggie());
    let ep = job_level::power_pdf(&e, 40).unwrap();
    let mp = job_level::power_pdf(&m, 40).unwrap();
    // Paper: Emmy 149 +/- 39 W (71% of TDP), Meggie 114 +/- 20 W (59%).
    assert_band(ep.mean_w, 135.0, 160.0, "Emmy mean power");
    assert_band(ep.std_w, 28.0, 50.0, "Emmy power std");
    assert_band(mp.mean_w, 105.0, 128.0, "Meggie mean power");
    assert_band(mp.std_w, 14.0, 38.0, "Meggie power std");
    assert_band(ep.mean_tdp_fraction, 0.62, 0.78, "Emmy TDP fraction");
    assert_band(mp.mean_tdp_fraction, 0.54, 0.66, "Meggie TDP fraction");
    // Emmy jobs draw more, absolutely and relative to TDP; Emmy's
    // distribution is wider.
    assert!(ep.mean_w > mp.mean_w);
    assert!(ep.std_w > mp.std_w);
}

#[test]
fn fig4_app_ranking_flip() {
    let (e, m) = (emmy(), meggie());
    let rows_e = job_level::app_power_table(&e, Some(&hpcpower::report::MAJOR_APPS));
    let rows_m = job_level::app_power_table(&m, Some(&hpcpower::report::MAJOR_APPS));
    assert_eq!(rows_e.len(), 5, "all five major apps present on Emmy");
    assert_eq!(rows_m.len(), 5, "all five major apps present on Meggie");
    let mean_of = |rows: &[job_level::AppPowerRow], app: &str| {
        rows.iter().find(|r| r.app == app).unwrap().power_w.mean
    };
    // Every major app draws less power on Meggie (14 nm vs 22 nm).
    for row in &rows_e {
        let on_meggie = mean_of(&rows_m, &row.app);
        assert!(
            on_meggie < row.power_w.mean,
            "{}: {on_meggie:.1} W on Meggie !< {:.1} W on Emmy",
            row.app,
            row.power_w.mean
        );
    }
    // The MD-0 / FASTEST ranking flip.
    assert!(mean_of(&rows_e, "MD-0") > mean_of(&rows_e, "FASTEST"));
    assert!(mean_of(&rows_m, "FASTEST") > mean_of(&rows_m, "MD-0"));
}

#[test]
fn table2_correlation_structure() {
    let (e, m) = (emmy(), meggie());
    let te = job_level::correlation_table(&e).unwrap();
    let tm = job_level::correlation_table(&m).unwrap();
    // Paper: Emmy rho(runtime)=0.42 > rho(size)=0.21;
    //        Meggie rho(size)=0.42 > rho(runtime)=0.12.
    assert_band(te.length_power.r, 0.25, 0.60, "Emmy runtime rho");
    assert_band(te.size_power.r, 0.00, 0.48, "Emmy size rho");
    assert_band(tm.length_power.r, -0.10, 0.32, "Meggie runtime rho");
    assert_band(tm.size_power.r, 0.20, 0.65, "Meggie size rho");
    assert!(te.length_power.r > te.size_power.r, "Emmy: runtime dominates");
    assert!(tm.size_power.r > tm.length_power.r, "Meggie: size dominates");
    // The strong correlations are unambiguously significant (the paper
    // reports p = 0.00 for them; Meggie's runtime rho is the weak one).
    for c in [te.length_power, te.size_power, tm.size_power] {
        assert!(c.p_value < 1e-6, "p-value {} not significant", c.p_value);
    }
}

#[test]
fn fig5_split_analysis() {
    for d in [emmy(), meggie()] {
        let s = job_level::split_analysis(&d).unwrap();
        // Longer and larger jobs draw more per-node power...
        assert!(s.long.mean > s.short.mean, "{}: long > short", d.system.name);
        assert!(s.large.mean > s.small.mean, "{}: large > small", d.system.name);
        // ...and are more homogeneous (lower standard deviation; a small
        // tolerance absorbs population sampling noise at test scale).
        assert!(
            s.long.std_dev < s.short.std_dev * 1.15,
            "{}: long jobs should vary less ({:.1} vs {:.1})",
            d.system.name,
            s.long.std_dev,
            s.short.std_dev
        );
        assert!(
            s.large.std_dev < s.small.std_dev * 1.10,
            "{}: large jobs should vary less ({:.1} vs {:.1})",
            d.system.name,
            s.large.std_dev,
            s.small.std_dev
        );
    }
}

#[test]
fn fig7_temporal_flatness() {
    for d in [emmy(), meggie()] {
        let t = temporal::analyze(&d).unwrap();
        // Paper: mean overshoot ~10-12%.
        assert_band(t.overshoot.stats.mean, 0.06, 0.18, "mean overshoot");
        // Paper: jobs spend ~10% of runtime >10% above their mean...
        assert_band(t.time_above_10pct.stats.mean, 0.03, 0.16, "time above");
        // ...and the majority of jobs essentially never exceed it.
        assert!(
            t.frac_jobs_never_above > 0.5,
            "{}: only {:.2} of jobs never above",
            d.system.name,
            t.frac_jobs_never_above
        );
        // Paper: average temporal CV ~11%.
        assert_band(t.mean_temporal_cv, 0.05, 0.16, "temporal CV");
    }
}

#[test]
fn fig9_fig10_spatial_variance() {
    for d in [emmy(), meggie()] {
        let s = spatial::analyze(&d).unwrap();
        // Paper: mean spatial spread ~20 W, ~15% of per-node power.
        assert_band(s.spread_w.stats.mean, 10.0, 30.0, "spread W");
        assert_band(s.spread_fraction.stats.mean, 0.07, 0.22, "spread fraction");
        // Paper: spread above its average for ~30% of runtime.
        assert_band(
            s.time_above_avg_spread.stats.mean,
            0.20,
            0.50,
            "time above avg spread",
        );
        // Paper: >20% of jobs show >15% node-energy imbalance; imbalance
        // grows with job size.
        assert!(
            s.frac_imbalance_above_15pct > 0.10,
            "{}: imbalance fraction {:.2}",
            d.system.name,
            s.frac_imbalance_above_15pct
        );
        assert!(
            s.imbalance_size_correlation.r > 0.2,
            "imbalance should correlate with size"
        );
    }
}

#[test]
fn fig11_user_concentration() {
    for d in [emmy(), meggie()] {
        let c = user_level::concentration(&d).unwrap();
        // Paper: top 20% of users hold ~85% of node-hours and energy,
        // with ~90% overlap between the two top sets.
        assert_band(c.top20_node_hours_share, 0.68, 0.97, "top-20 node-hours");
        assert_band(c.top20_energy_share, 0.68, 0.97, "top-20 energy");
        assert!(
            c.top20_overlap > 0.7,
            "{}: node-hour and energy top sets overlap only {:.2}",
            d.system.name,
            c.top20_overlap
        );
    }
}

#[test]
fn fig12_per_user_variability() {
    let (e, m) = (emmy(), meggie());
    let ve = user_level::user_variability(&e, 3).unwrap();
    let vm = user_level::user_variability(&m, 3).unwrap();
    // Users are NOT monotonous: double-digit per-user power CV on both
    // systems (paper reports 50%/100%; the physically bounded simulator
    // reaches the 20-40% range — see EXPERIMENTS.md).
    assert!(ve.power_cv.stats.mean > 0.12, "Emmy user CV {}", ve.power_cv.stats.mean);
    assert!(vm.power_cv.stats.mean > 0.12, "Meggie user CV {}", vm.power_cv.stats.mean);
    // Node-count and runtime variability in the paper's ballpark.
    assert_band(ve.mean_nodes_cv, 0.15, 0.70, "Emmy nodes CV");
    assert_band(vm.mean_nodes_cv, 0.25, 0.95, "Meggie nodes CV");
    assert_band(ve.mean_runtime_cv, 0.5, 1.6, "Emmy runtime CV");
    assert_band(vm.mean_runtime_cv, 0.5, 2.2, "Meggie runtime CV");
}

#[test]
fn fig13_cluster_tightness() {
    for d in [emmy(), meggie()] {
        for by in [user_level::ClusterBy::Nodes, user_level::ClusterBy::Walltime] {
            let t = user_level::cluster_tightness(&d, by, 2).unwrap();
            // Paper (Emmy, by nodes): 61.7% of clusters under 10% CV.
            // Clustering by (user, nodes/walltime) collapses most of the
            // per-user variability.
            assert!(
                t.frac_below_10pct > 0.5,
                "{} {:?}: only {:.2} of clusters tight",
                d.system.name,
                by,
                t.frac_below_10pct
            );
            let total: f64 = t.bucket_shares.iter().sum();
            assert!((total - 1.0).abs() < 1e-9);
        }
    }
}

#[test]
fn fig14_fig15_prediction_quality() {
    let cfg = PredictionConfig {
        n_splits: 5,
        ..Default::default()
    };
    for d in [emmy(), meggie()] {
        let p = prediction::analyze(&d, &cfg).unwrap();
        let bdt = p.models.iter().find(|m| m.model == "BDT").unwrap();
        let knn = p.models.iter().find(|m| m.model == "KNN").unwrap();
        let flda = p.models.iter().find(|m| m.model == "FLDA").unwrap();
        // Paper: BDT best — 90% of predictions <10% error, 75% <5%.
        assert!(
            bdt.frac_below_10pct > 0.82,
            "{}: BDT <10%-err fraction {:.2}",
            d.system.name,
            bdt.frac_below_10pct
        );
        assert!(
            bdt.frac_below_5pct > 0.60,
            "{}: BDT <5%-err fraction {:.2}",
            d.system.name,
            bdt.frac_below_5pct
        );
        // Model ordering: BDT <= KNN < FLDA in error.
        assert!(bdt.mape <= knn.mape + 0.005, "BDT should not lose to KNN");
        assert!(knn.mape < flda.mape, "KNN should beat FLDA");
        // Paper Fig. 15: prediction quality is broad across users.
        assert!(
            p.bdt_user_frac_below_5pct > 0.55,
            "{}: only {:.2} of users under 5% mean error",
            d.system.name,
            p.bdt_user_frac_below_5pct
        );
    }
}
