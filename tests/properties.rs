//! Property-based tests over cross-crate invariants.

use hpcpower_ml::{DecisionTree, Knn, KnnConfig, Regressor, TreeConfig};
use hpcpower_sim::power_aware::{schedule_power_aware, PowerBudget};
use hpcpower_sim::{schedule, schedule_with_policy, BackfillPolicy, JobRequest};
use hpcpower_stats::{Ecdf, Histogram, Lorenz, Summary};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The scheduler never double-books a node and never starts a job
    /// before submission, for arbitrary workloads.
    #[test]
    fn scheduler_is_sound(
        raw in prop::collection::vec(
            (0u64..500, 1u32..12, 10u64..200, 5u64..200), 1..120
        ),
        nodes in 4u32..32,
    ) {
        let mut submit = 0;
        let requests: Vec<JobRequest> = raw
            .iter()
            .map(|&(gap, n, walltime, runtime)| {
                submit += gap % 20;
                JobRequest {
                    user: 0,
                    template: 0,
                    app: 0,
                    submit_min: submit,
                    nodes: n,
                    walltime_req_min: walltime.max(runtime),
                    runtime_min: runtime.min(walltime),
                }
            })
            .collect();
        let out = schedule(&requests, nodes);
        // Every request either runs or is rejected (too big).
        prop_assert_eq!(out.jobs.len() + out.rejected.len(), requests.len());
        for &r in &out.rejected {
            prop_assert!(requests[r].nodes > nodes);
        }
        // Sweep events to check node exclusivity.
        let mut events: Vec<(u64, i32, usize)> = Vec::new();
        for (k, j) in out.jobs.iter().enumerate() {
            prop_assert!(j.start_min >= j.request.submit_min);
            prop_assert_eq!(j.node_ids.len(), j.request.nodes as usize);
            events.push((j.start_min, 1, k));
            events.push((j.end_min, -1, k));
        }
        events.sort_by_key(|&(t, kind, _)| (t, kind));
        let mut in_use = std::collections::HashSet::new();
        for (_, kind, k) in events {
            for id in &out.jobs[k].node_ids {
                prop_assert!(*id < nodes);
                if kind == 1 {
                    prop_assert!(in_use.insert(*id), "node {} double-booked", id);
                } else {
                    prop_assert!(in_use.remove(id));
                }
            }
        }
    }

    /// Welford summaries agree with naive computation and merge cleanly.
    #[test]
    fn summary_matches_naive(values in prop::collection::vec(-1e4f64..1e4, 2..200)) {
        let s = Summary::from_slice(&values);
        let n = values.len() as f64;
        let mean = values.iter().sum::<f64>() / n;
        let var = values.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / n;
        prop_assert!((s.mean() - mean).abs() < 1e-6 * (1.0 + mean.abs()));
        prop_assert!((s.variance_population() - var).abs() < 1e-5 * (1.0 + var));
        // Merging any split reproduces the whole.
        let cut = values.len() / 2;
        let mut left = Summary::from_slice(&values[..cut]);
        left.merge(&Summary::from_slice(&values[cut..]));
        prop_assert!((left.mean() - s.mean()).abs() < 1e-9 * (1.0 + mean.abs()));
        prop_assert_eq!(left.count(), s.count());
    }

    /// ECDFs are monotone, bounded, and hit 1 at the maximum.
    #[test]
    fn ecdf_is_a_cdf(values in prop::collection::vec(-1e3f64..1e3, 1..300)) {
        let e = Ecdf::new(&values).unwrap();
        let mut last = 0.0;
        let lo = e.min() - 1.0;
        let hi = e.max() + 1.0;
        for i in 0..=50 {
            let x = lo + (hi - lo) * i as f64 / 50.0;
            let f = e.eval(x);
            prop_assert!((0.0..=1.0).contains(&f));
            prop_assert!(f >= last - 1e-12);
            last = f;
        }
        prop_assert_eq!(e.eval(e.max()), 1.0);
        prop_assert_eq!(e.eval(lo), 0.0);
    }

    /// Histogram density integrates to the in-range mass.
    #[test]
    fn histogram_mass(values in prop::collection::vec(0f64..100.0, 1..300)) {
        let mut h = Histogram::new(0.0, 100.0001, 17).unwrap();
        for &v in &values {
            h.push(v);
        }
        let mass: f64 = h.density().iter().map(|d| d * h.bin_width()).sum();
        prop_assert!((mass - 1.0).abs() < 1e-9, "mass {}", mass);
    }

    /// Lorenz top-share is monotone in the fraction, bounded by 1, and
    /// the top share of everything is everything.
    #[test]
    fn lorenz_properties(values in prop::collection::vec(0.01f64..1e3, 1..200)) {
        let l = Lorenz::new(&values).unwrap();
        let mut last = 0.0;
        for i in 0..=20 {
            let share = l.top_share(i as f64 / 20.0);
            prop_assert!(share >= last - 1e-12);
            prop_assert!(share <= 1.0 + 1e-12);
            last = share;
        }
        prop_assert!((l.top_share(1.0) - 1.0).abs() < 1e-9);
        let g = l.gini();
        prop_assert!((0.0..1.0).contains(&g));
    }

    /// Tree and KNN predictions always stay within the training target
    /// range (they are averages of training targets).
    #[test]
    fn models_predict_within_target_hull(
        rows in prop::collection::vec(
            (0u32..6, 1u32..32, 1u64..24, 20f64..200.0), 10..120
        ),
        query in (0u32..10, 1u32..64, 1u64..48),
    ) {
        let mut data = hpcpower_ml::data::Dataset::default();
        for &(u, n, w, t) in &rows {
            data.push(u, n as f64, (w * 60) as f64, t);
        }
        let lo = data.targets.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = data.targets.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let (qu, qn, qw) = query;
        let tree = DecisionTree::fit(&data, TreeConfig::default()).unwrap();
        let p = tree.predict(qu, qn as f64, (qw * 60) as f64);
        prop_assert!(p >= lo - 1e-9 && p <= hi + 1e-9, "tree {} outside [{}, {}]", p, lo, hi);
        let knn = Knn::fit(&data, KnnConfig { k: 3, ..Default::default() }).unwrap();
        let p = knn.predict(qu, qn as f64, (qw * 60) as f64);
        prop_assert!(p >= lo - 1e-9 && p <= hi + 1e-9, "knn {} outside [{}, {}]", p, lo, hi);
    }

    /// The power-aware scheduler never exceeds its budget and never
    /// double-books, for arbitrary workloads and estimates.
    #[test]
    fn power_aware_scheduler_is_sound(
        raw in prop::collection::vec(
            (0u64..300, 1u32..8, 20u64..150, 10u64..150, 50u32..200), 1..80
        ),
        nodes in 8u32..24,
        budget_scale in 0.3f64..1.2,
    ) {
        let mut submit = 0;
        let mut requests = Vec::new();
        let mut estimates = Vec::new();
        for &(gap, n, walltime, runtime, est) in &raw {
            submit += gap % 15;
            requests.push(JobRequest {
                user: 0,
                template: 0,
                app: 0,
                submit_min: submit,
                nodes: n,
                walltime_req_min: walltime.max(runtime),
                runtime_min: runtime.min(walltime),
            });
            estimates.push(est as f64);
        }
        let budget = PowerBudget {
            budget_w: budget_scale * nodes as f64 * 200.0,
            margin: 0.1,
        };
        let out = schedule_power_aware(&requests, nodes, &estimates, budget);
        prop_assert_eq!(out.jobs.len() + out.rejected.len(), requests.len());
        // Sweep both resources.
        let mut events: Vec<(u64, i32, usize)> = Vec::new();
        for (k, j) in out.jobs.iter().enumerate() {
            prop_assert!(j.start_min >= j.request.submit_min);
            events.push((j.start_min, 1, k));
            events.push((j.end_min, -1, k));
        }
        events.sort_by_key(|&(t, kind, _)| (t, kind));
        let mut in_use = std::collections::HashSet::new();
        let mut power = 0.0f64;
        for (_, kind, k) in events {
            let j = &out.jobs[k];
            let p = j.request.nodes as f64 * estimates[j.request_idx] * 1.1;
            power += kind as f64 * p;
            prop_assert!(power <= budget.budget_w + 1e-6, "budget exceeded: {}", power);
            for id in &j.node_ids {
                if kind == 1 {
                    prop_assert!(in_use.insert(*id), "node {} double-booked", id);
                } else {
                    prop_assert!(in_use.remove(id));
                }
            }
        }
    }

    /// Conservative backfill never beats EASY on any job's start time
    /// ordering guarantee: the queue head's start is identical, and
    /// conservative never starts a job that EASY would refuse.
    #[test]
    fn conservative_is_never_more_aggressive(
        raw in prop::collection::vec(
            (0u64..200, 1u32..10, 20u64..200, 10u64..200), 1..60
        ),
        nodes in 8u32..20,
    ) {
        let mut submit = 0;
        let requests: Vec<JobRequest> = raw
            .iter()
            .map(|&(gap, n, walltime, runtime)| {
                submit += gap % 10;
                JobRequest {
                    user: 0,
                    template: 0,
                    app: 0,
                    submit_min: submit,
                    nodes: n,
                    walltime_req_min: walltime.max(runtime),
                    runtime_min: runtime.min(walltime),
                }
            })
            .collect();
        let easy = schedule_with_policy(&requests, nodes, BackfillPolicy::Easy);
        let cons = schedule_with_policy(&requests, nodes, BackfillPolicy::Conservative);
        prop_assert_eq!(easy.rejected.len(), cons.rejected.len());
        // Total delivered node-minutes: EASY >= Conservative (it admits a
        // superset of backfill moves at every decision point, which under
        // identical arrivals cannot reduce completed work).
        let delivered = |o: &hpcpower_sim::ScheduleOutcome| -> u64 {
            o.jobs.iter().map(|j| j.request.nodes as u64 * (j.end_min - j.start_min)).sum()
        };
        prop_assert_eq!(delivered(&easy), delivered(&cons)); // same jobs run
    }

    /// Power samples stay inside [idle, TDP] for arbitrary job params.
    #[test]
    fn power_samples_physical(
        base in 10f64..400.0,
        imb in 0f64..0.2,
        spike_frac in 0f64..0.5,
        spike_amp in 0f64..0.4,
        dip_frac in 0f64..0.5,
        dip_amp in 0f64..0.5,
        key in any::<u64>(),
    ) {
        use hpcpower_sim::power::{JobPowerParams, PowerModel, PowerModelConfig};
        let cfg = PowerModelConfig::default();
        let model = PowerModel::new(cfg, 1);
        let params = JobPowerParams {
            key,
            base_w: base,
            imbalance_sigma: imb,
            spike_frac,
            spike_amp,
            dip_frac,
            dip_amp,
        };
        for rank in 0..4u32 {
            for t in (0..200u64).step_by(7) {
                let p = model.sample(&params, rank * 31 % 64, rank, t);
                prop_assert!(p >= cfg.idle_w && p <= cfg.tdp_w, "sample {}", p);
            }
        }
    }
}
