//! End-to-end integration tests spanning the whole stack: simulate →
//! validate → serialize → re-analyze, plus cross-checks between the
//! streaming monitor and exact trace-level recomputation.

use std::io::BufReader;

use hpcpower::prelude::*;
use hpcpower_sim::{simulate, ClusterSim, SimConfig};
use hpcpower_trace::{csv, json, validate::validate};

#[test]
fn simulated_datasets_satisfy_all_invariants() {
    for seed in [1, 2, 3] {
        let emmy = simulate(SimConfig::emmy_small(seed));
        validate(&emmy).unwrap_or_else(|e| panic!("Emmy seed {seed}: {e}"));
        let meggie = simulate(SimConfig::meggie_small(seed));
        validate(&meggie).unwrap_or_else(|e| panic!("Meggie seed {seed}: {e}"));
    }
}

#[test]
fn monitor_summaries_match_series_recomputation() {
    // The streaming monitor's one-pass metrics must agree with exact
    // two-pass recomputation from the retained per-node series.
    let dataset = simulate(SimConfig::emmy_small(5));
    assert!(
        dataset.instrumented.len() >= 10,
        "need instrumented jobs, got {}",
        dataset.instrumented.len()
    );
    for series in &dataset.instrumented {
        let summary = dataset.summary(series.id).expect("summary exists");
        let t = temporal::metrics_from_series(series);
        let s = spatial::metrics_from_series(series);
        let err = |a: f64, b: f64| (a - b).abs();
        assert!(
            err(series.per_node_power(), summary.per_node_power_w) < 1e-6,
            "{}: per-node power mismatch",
            series.id
        );
        assert!(
            err(t.peak_overshoot, summary.peak_overshoot) < 5e-3,
            "{}: overshoot {} vs {}",
            series.id,
            t.peak_overshoot,
            summary.peak_overshoot
        );
        assert!(
            err(t.frac_time_above_10pct, summary.frac_time_above_10pct) < 0.02,
            "{}: time-above mismatch",
            series.id
        );
        assert!(
            err(t.temporal_cv, summary.temporal_cv) < 5e-3,
            "{}: temporal CV mismatch",
            series.id
        );
        assert!(
            err(s.avg_spread_w, summary.avg_spatial_spread_w) < 0.2,
            "{}: spread {} vs {}",
            series.id,
            s.avg_spread_w,
            summary.avg_spatial_spread_w
        );
        assert!(
            err(s.energy_imbalance, summary.energy_imbalance) < 1e-6,
            "{}: energy imbalance mismatch",
            series.id
        );
    }
}

#[test]
fn csv_and_json_round_trips_preserve_analysis_results() {
    let dataset = simulate(SimConfig::meggie_small(9));

    // CSV: the flat tables.
    let mut jobs_buf = Vec::new();
    csv::write_jobs(&mut jobs_buf, &dataset.jobs, &dataset.summaries).unwrap();
    let (jobs2, summaries2) = csv::read_jobs(BufReader::new(&jobs_buf[..])).unwrap();
    assert_eq!(jobs2, dataset.jobs);
    assert_eq!(summaries2, dataset.summaries);

    let mut sys_buf = Vec::new();
    csv::write_system(&mut sys_buf, &dataset.system_series).unwrap();
    let series2 = csv::read_system(BufReader::new(&sys_buf[..])).unwrap();
    assert_eq!(series2, dataset.system_series);

    // JSON: the whole dataset; analyses must agree bit-for-bit.
    let mut json_buf = Vec::new();
    json::write_dataset(&mut json_buf, &dataset).unwrap();
    let reread = json::read_dataset(&json_buf[..]).unwrap();
    let pdf_a = job_level::power_pdf(&dataset, 30).unwrap();
    let pdf_b = job_level::power_pdf(&reread, 30).unwrap();
    assert_eq!(pdf_a.mean_w, pdf_b.mean_w);
    assert_eq!(pdf_a.density, pdf_b.density);
    let sys_a = system_level::analyze(&dataset);
    let sys_b = system_level::analyze(&reread);
    assert_eq!(sys_a, sys_b);
}

#[test]
fn simulation_is_reproducible_and_seed_sensitive() {
    let a = simulate(SimConfig::emmy_small(77));
    let b = simulate(SimConfig::emmy_small(77));
    assert_eq!(a.jobs, b.jobs);
    assert_eq!(a.summaries, b.summaries);
    assert_eq!(a.instrumented, b.instrumented);
    let c = simulate(SimConfig::emmy_small(78));
    assert_ne!(a.jobs, c.jobs);
}

#[test]
fn ground_truth_is_exposed_for_ablations() {
    let out = ClusterSim::new(SimConfig::emmy_small(4)).run();
    assert_eq!(out.job_params.len(), out.dataset.len());
    assert_eq!(out.users.len(), out.dataset.user_count as usize);
    // The resolved base power must sit inside the physical envelope.
    for p in &out.job_params {
        assert!(p.base_w > 0.0 && p.base_w < out.dataset.system.node_tdp_w * 1.5);
    }
    // Every job references a known user and template.
    for job in &out.dataset.jobs {
        let user = &out.users[job.user.index()];
        assert!(!user.templates.is_empty());
    }
}

#[test]
fn report_renders_for_both_systems() {
    let emmy = simulate(SimConfig::emmy_small(6));
    let meggie = simulate(SimConfig::meggie_small(6));
    let cfg = hpcpower::prediction::PredictionConfig {
        n_splits: 2,
        ..Default::default()
    };
    let text = hpcpower::report::render_pair(&emmy, &meggie, &cfg);
    for needle in ["Fig. 3", "Fig. 4", "Fig. 7", "Fig. 11", "Fig. 14", "Table 2"] {
        assert!(text.contains(needle), "report missing {needle}");
    }
    assert!(text.contains(&emmy.system.name));
    assert!(text.contains(&meggie.system.name));
}

#[test]
fn accounting_times_are_consistent_with_scheduling() {
    let dataset = simulate(SimConfig::emmy_small(8));
    for job in &dataset.jobs {
        assert!(job.submit_min <= job.start_min);
        assert!(job.start_min < job.end_min);
        // The scheduler kills jobs at the requested walltime.
        assert!(job.runtime_min() <= job.walltime_req_min);
    }
    // Backlog exists on a production system: some jobs waited.
    let waited = dataset.jobs.iter().filter(|j| j.wait_min() > 0).count();
    assert!(
        waited > dataset.len() / 20,
        "expected queueing on a loaded system, {waited} of {} waited",
        dataset.len()
    );
}
